package bench

import (
	"fmt"
	"strings"

	"mosaic/internal/core"
	"mosaic/internal/sql"
	"mosaic/internal/swg"
	"mosaic/internal/value"
)

// VisibilityConfig tunes the Sec 3.3 false-negative/false-positive
// experiment.
type VisibilityConfig struct {
	Seed        int64
	OpenSamples int
	SWG         swg.Config
}

func (c VisibilityConfig) withDefaults() VisibilityConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OpenSamples <= 0 {
		c.OpenSamples = 5
	}
	if len(c.SWG.Hidden) == 0 {
		c.SWG = swg.Config{
			Hidden: []int{48, 48}, Latent: 6, Epochs: 40,
			BatchSize: 256, Projections: 32, StepsPerEpoch: 8,
			Lambda: 0.0005, LR: 0.003, Seed: c.Seed,
		}
	}
	return c
}

// VisibilityRow is one visibility level's outcome.
type VisibilityRow struct {
	Visibility     string
	FalseNegatives int // distinct population tuples absent from the answer
	FalsePositives int // distinct answer tuples absent from the population
}

// VisibilityResult reproduces the Sec 3.3 table empirically: CLOSED and
// SEMI-OPEN return exactly the sample's tuples (n false negatives, zero
// false positives); OPEN trades false negatives for possible false
// positives.
type VisibilityResult struct {
	MissingFromSample int // the paper's n
	Rows              []VisibilityRow
}

// String renders the table in the paper's layout.
func (r *VisibilityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec 3.3 visibility trade-off (n = %d tuples missing from the sample)\n", r.MissingFromSample)
	fmt.Fprintf(&b, "%-10s %-15s %-15s %s\n", "", "False Negative", "False Positive", "Assumption")
	for _, row := range r.Rows {
		assumption := "Open"
		if row.Visibility == "CLOSED" {
			assumption = "Closed"
		}
		fmt.Fprintf(&b, "%-10s %-15d %-15d %s\n", row.Visibility, row.FalseNegatives, row.FalsePositives, assumption)
	}
	return b.String()
}

// RunVisibility builds a discrete world where the sample misses entire
// categories, answers a distinct-tuple query at each visibility, and counts
// FN/FP against the known population.
func RunVisibility(cfg VisibilityConfig) (*VisibilityResult, error) {
	cfg = cfg.withDefaults()
	// The toy sample is tiny (tens of rows); generating |S| rows per
	// replicate (the paper's protocol, sized for 10k-row samples) would
	// undersample the categorical grid, so the replicate size is pinned.
	eng := core.NewEngine(core.Options{
		Seed:          cfg.Seed,
		OpenSamples:   cfg.OpenSamples,
		GeneratedRows: 500,
		SWG:           cfg.SWG,
	})
	if _, err := eng.ExecScript(`
		CREATE GLOBAL POPULATION P (country TEXT, email TEXT);
		CREATE SAMPLE S AS (SELECT * FROM P WHERE email = 'Yahoo');
		CREATE TABLE Truth (country TEXT, email TEXT, n INT);
	`); err != nil {
		return nil, err
	}
	// Population truth: 3 countries × 3 providers.
	type cell struct {
		c, e string
		n    int
	}
	popCells := []cell{
		{"UK", "Yahoo", 200}, {"UK", "Gmail", 150}, {"UK", "AOL", 30},
		{"FR", "Yahoo", 120}, {"FR", "Gmail", 180}, {"FR", "AOL", 20},
		{"DE", "Yahoo", 80}, {"DE", "Gmail", 250}, {"DE", "AOL", 25},
	}
	var truthRows [][]any
	for _, c := range popCells {
		truthRows = append(truthRows, []any{c.c, c.e, c.n})
	}
	if err := eng.Ingest("Truth", truthRows); err != nil {
		return nil, err
	}
	if _, err := eng.ExecScript(`
		CREATE METADATA P_M1 AS (SELECT country, n FROM Truth);
		CREATE METADATA P_M2 AS (SELECT email, n FROM Truth);
	`); err != nil {
		return nil, err
	}
	// The sample: Yahoo tuples only (10 per 40 population tuples).
	var sampleRows [][]any
	for _, c := range popCells {
		if c.e != "Yahoo" {
			continue
		}
		for i := 0; i < c.n/40; i++ {
			sampleRows = append(sampleRows, []any{c.c, c.e})
		}
	}
	if err := eng.Ingest("S", sampleRows); err != nil {
		return nil, err
	}

	popSet := map[string]bool{}
	for _, c := range popCells {
		popSet[c.c+"\x1f"+c.e] = true
	}
	sampleSet := map[string]bool{}
	for _, r := range sampleRows {
		sampleSet[r[0].(string)+"\x1f"+r[1].(string)] = true
	}
	missing := 0
	for k := range popSet {
		if !sampleSet[k] {
			missing++
		}
	}

	res := &VisibilityResult{MissingFromSample: missing}
	for _, vis := range []string{"CLOSED", "SEMI-OPEN", "OPEN"} {
		q := fmt.Sprintf("SELECT %s country, email, COUNT(*) FROM P GROUP BY country, email", vis)
		sel, err := sql.ParseQuery(q)
		if err != nil {
			return nil, err
		}
		out, err := eng.Query(sel)
		if err != nil {
			return nil, err
		}
		ansSet := map[string]bool{}
		for _, row := range out.Rows {
			// Skip all-but-noise groups: OPEN replicate-intersection already
			// prunes unstable tuples, but zero-count groups are not answers.
			if cnt, err := row[2].Float64(); err == nil && cnt <= 0 {
				continue
			}
			ansSet[keyOf2(row[0], row[1])] = true
		}
		fn, fp := 0, 0
		for k := range popSet {
			if !ansSet[k] {
				fn++
			}
		}
		for k := range ansSet {
			if !popSet[k] {
				fp++
			}
		}
		res.Rows = append(res.Rows, VisibilityRow{Visibility: vis, FalseNegatives: fn, FalsePositives: fp})
	}
	return res, nil
}

func keyOf2(a, b value.Value) string {
	return a.AsText() + "\x1f" + b.AsText()
}

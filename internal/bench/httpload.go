package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"mosaic"
	"mosaic/client"
	"mosaic/internal/server"
)

// HTTPLoadConfig tunes the network serving experiment: one mosaic-serve
// handler (in-process listener, real HTTP round trips) on the flights
// workload, swept over concurrent client counts. Every network answer is
// decoded and compared byte-for-byte against an in-process reference engine
// built from the identical snapshot — a mismatch means the serving layer
// (wire codec, concurrency, admission) corrupted an answer, not noise,
// because answers are deterministic for a fixed seed.
type HTTPLoadConfig struct {
	Flights          FlightsConfig
	Clients          []int // client counts to sweep; default {1, 2, 4, 8}
	QueriesPerClient int   // queries each client issues; default 8
	MaxConcurrent    int   // server admission gate; default 64
}

func (c HTTPLoadConfig) withDefaults() HTTPLoadConfig {
	if len(c.Clients) == 0 {
		c.Clients = []int{1, 2, 4, 8}
	}
	if c.QueriesPerClient <= 0 {
		c.QueriesPerClient = 8
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	return c
}

// HTTPLoadRow is one swept client count.
type HTTPLoadRow struct {
	Clients int
	Queries int
	Secs    float64
	QPS     float64
}

// HTTPLoadResult is the full sweep.
type HTTPLoadResult struct {
	Rows     []HTTPLoadRow
	WarmSecs float64
	Verified int // network answers checked byte-for-byte against the reference
}

// String renders the sweep as an aligned table.
func (r *HTTPLoadResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP serving — network query throughput (warm caches; warm-up %.1fs; %d answers verified byte-for-byte)\n",
		r.WarmSecs, r.Verified)
	b.WriteString("  clients  queries   secs      q/s   speedup\n")
	var base float64
	for _, row := range r.Rows {
		if base == 0 {
			base = row.QPS
		}
		fmt.Fprintf(&b, "  %7d  %7d  %6.2f  %7.1f  %6.2fx\n",
			row.Clients, row.Queries, row.Secs, row.QPS, row.QPS/base)
	}
	return b.String()
}

// RunHTTPLoad builds the flights workload, snapshots it into a served DB and
// an in-process reference DB (same options, same statement stream, hence
// bit-identical answers), exposes the served DB through internal/server on a
// loopback listener, and drives it with concurrent HTTP clients.
func RunHTTPLoad(cfg HTTPLoadConfig) (*HTTPLoadResult, error) {
	cfg = cfg.withDefaults()
	setup, err := BuildFlights(cfg.Flights)
	if err != nil {
		return nil, err
	}
	script, err := setup.Engine.DumpScript()
	if err != nil {
		return nil, err
	}
	opts := &mosaic.Options{
		Seed:        setup.Cfg.Seed,
		OpenSamples: setup.Cfg.OpenSamples,
		Workers:     setup.Cfg.Workers,
		SWG:         setup.Cfg.SWG,
		IPF:         setup.Cfg.IPF,
	}
	served := mosaic.Open(opts)
	if err := served.Restore(script); err != nil {
		return nil, fmt.Errorf("bench: restore served DB: %v", err)
	}
	ref := mosaic.Open(opts)
	if err := ref.Restore(script); err != nil {
		return nil, fmt.Errorf("bench: restore reference DB: %v", err)
	}

	srv, err := server.New(server.Config{DB: served, MaxConcurrent: cfg.MaxConcurrent, RequestTimeout: 5 * time.Minute})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()

	// The job mix: every Table 2 query at every population visibility.
	type job struct {
		sql string
		ref string
	}
	var jobs []job
	for _, vis := range []string{"CLOSED", "SEMI-OPEN", "OPEN"} {
		for _, q := range FlightQueries {
			jobs = append(jobs, job{sql: withVisibility(q.SQL, vis)})
		}
	}

	// Warm both engines (model training + IPF fits) and pin the reference
	// renderings; one HTTP round trip per job also warms the server side.
	warmStart := time.Now()
	warmClient := client.New(base)
	for i := range jobs {
		res, err := ref.Query(jobs[i].sql)
		if err != nil {
			return nil, fmt.Errorf("bench: reference warm-up %q: %v", jobs[i].sql, err)
		}
		jobs[i].ref = renderResult(res)
		net0, err := warmClient.Query(jobs[i].sql)
		if err != nil {
			return nil, fmt.Errorf("bench: network warm-up %q: %v", jobs[i].sql, err)
		}
		if got := renderResult(net0); got != jobs[i].ref {
			return nil, fmt.Errorf("bench: warm-up answer for %q diverged over HTTP:\n got %q\nwant %q", jobs[i].sql, got, jobs[i].ref)
		}
	}
	warm := time.Since(warmStart).Seconds()

	out := &HTTPLoadResult{WarmSecs: warm, Verified: len(jobs)}
	for _, clients := range cfg.Clients {
		total := clients * cfg.QueriesPerClient
		errs := make([]error, clients)
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cl := client.New(base)
				for i := 0; i < cfg.QueriesPerClient; i++ {
					j := jobs[(c+i)%len(jobs)]
					res, err := cl.Query(j.sql)
					if err != nil {
						errs[c] = err
						return
					}
					if got := renderResult(res); got != j.ref {
						errs[c] = fmt.Errorf("bench: client %d query %d (%q): network answer diverged from in-process reference", c, i, j.sql)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		secs := time.Since(start).Seconds()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		out.Verified += total
		out.Rows = append(out.Rows, HTTPLoadRow{Clients: clients, Queries: total, Secs: secs, QPS: float64(total) / secs})
	}
	return out, nil
}

package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"mosaic/internal/bayes"
	"mosaic/internal/dataset"
	"mosaic/internal/exec"
	"mosaic/internal/expr"
	"mosaic/internal/ipf"
	"mosaic/internal/marginal"
	"mosaic/internal/mechanism"
	"mosaic/internal/sql"
	"mosaic/internal/stats"
	"mosaic/internal/swg"
	"mosaic/internal/value"
	"mosaic/internal/wasserstein"
)

// --- A1: λ sweep ---

// LambdaRow is one λ setting's outcome: marginal fit vs shape preservation
// (the trade-off Sec 5.2's loss term is designed around).
type LambdaRow struct {
	Lambda     float64
	MarginalW1 float64 // mean of per-axis W1 against the population
	Shape      float64 // mean nearest-population distance
}

// LambdaResult is the A1 ablation.
type LambdaResult struct{ Rows []LambdaRow }

// String renders the sweep.
func (r *LambdaResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A1 — λ trades marginal fit against sample structure\n")
	fmt.Fprintf(&b, "%-12s %-14s %s\n", "lambda", "marginal W1", "shape dist")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12g %-14.5f %.5f\n", row.Lambda, row.MarginalW1, row.Shape)
	}
	return b.String()
}

// RunAblationLambda trains the spiral M-SWG at several λ values.
func RunAblationLambda(base SpiralConfig, lambdas []float64) (*LambdaResult, error) {
	base = base.withDefaults()
	if len(lambdas) == 0 {
		lambdas = []float64{0.0004, 0.004, 0.04, 0.4, 4}
	}
	out := &LambdaResult{}
	for _, l := range lambdas {
		cfg := base
		cfg.SWG.Lambda = l
		setup, err := BuildSpiral(cfg)
		if err != nil {
			return nil, err
		}
		f5, err := Figure5From(setup)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, LambdaRow{
			Lambda:     l,
			MarginalW1: (f5.GenW1X + f5.GenW1Y) / 2,
			Shape:      f5.GenShape,
		})
	}
	return out, nil
}

// --- A2: projection count sweep ---

// ProjectionRow is one p setting's 2-D marginal fit.
type ProjectionRow struct {
	Projections int
	Sliced2DW1  float64 // sliced W1 of the generated (x,y) joint vs population
}

// ProjectionResult is the A2 ablation.
type ProjectionResult struct{ Rows []ProjectionRow }

// String renders the sweep.
func (r *ProjectionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A2 — projection count p vs 2-D marginal fit\n")
	fmt.Fprintf(&b, "%-12s %s\n", "p", "sliced 2-D W1")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12d %.5f\n", row.Projections, row.Sliced2DW1)
	}
	return b.String()
}

// RunAblationProjections trains a spiral M-SWG on a single *2-D* (x,y)
// marginal — forcing the sliced path — at several projection counts, and
// evaluates the generated joint against the population with a fixed,
// held-out projection set.
func RunAblationProjections(base SpiralConfig, ps []int) (*ProjectionResult, error) {
	base = base.withDefaults()
	if len(ps) == 0 {
		ps = []int{4, 16, 64, 128}
	}
	pop := dataset.Spiral(dataset.SpiralConfig{N: base.PopN, Seed: base.Seed})
	sample, err := dataset.BiasedSpiralSample(pop, base.SampleN, base.Bias, base.Seed+1)
	if err != nil {
		return nil, err
	}
	width := 1.6 / float64(base.Bins)
	joint, err := marginal.FromTableBinned("spiral_xy", pop, []string{"x", "y"},
		map[string]float64{"x": width, "y": width})
	if err != nil {
		return nil, err
	}
	// Held-out evaluation projections (fixed across all p settings).
	evalRng := rand.New(rand.NewSource(base.Seed + 99))
	evalDirs := make([][]float64, 64)
	for i := range evalDirs {
		evalDirs[i] = wasserstein.RandomUnitVector(evalRng, 2)
	}
	popX, _ := pop.FloatColumn("x")
	popY, _ := pop.FloatColumn("y")

	out := &ProjectionResult{}
	for _, p := range ps {
		cfg := base.SWG
		cfg.Projections = p
		model, err := swg.New(sample, []*marginal.Marginal{joint}, cfg)
		if err != nil {
			return nil, err
		}
		if err := model.Train(); err != nil {
			return nil, err
		}
		gen, err := model.Generate("g", base.SampleN)
		if err != nil {
			return nil, err
		}
		genX, _ := gen.FloatColumn("x")
		genY, _ := gen.FloatColumn("y")
		var acc float64
		for _, dir := range evalDirs {
			pp := projectPair(popX, popY, dir)
			gp := projectPair(genX, genY, dir)
			ones := make([]float64, len(pp))
			for i := range ones {
				ones[i] = 1
			}
			w, err := wasserstein.NewWeighted(pp, ones)
			if err != nil {
				return nil, err
			}
			acc += w.Distance(gp)
		}
		out.Rows = append(out.Rows, ProjectionRow{Projections: p, Sliced2DW1: acc / float64(len(evalDirs))})
	}
	return out, nil
}

func projectPair(xs, ys []float64, dir []float64) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = xs[i]*dir[0] + ys[i]*dir[1]
	}
	return out
}

// --- A3: known mechanism vs IPF ---

// MechanismResult compares SEMI-OPEN's two subcases (Sec 4.1): inverse
// inclusion probability when the mechanism is known, IPF when it is not.
type MechanismResult struct {
	TruthCount  float64
	HTCount     float64 // Horvitz–Thompson (known mechanism)
	IPFCount    float64
	ClosedCount float64
	TruthAvg    float64
	HTAvg       float64
	IPFAvg      float64
	ClosedAvg   float64
}

// String renders the comparison.
func (r *MechanismResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A3 — known mechanism (HT) vs IPF vs closed\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-12s %-12s\n", "metric", "truth", "HT", "IPF", "closed")
	fmt.Fprintf(&b, "%-10s %-12.1f %-12.1f %-12.1f %-12.1f\n", "COUNT(*)", r.TruthCount, r.HTCount, r.IPFCount, r.ClosedCount)
	fmt.Fprintf(&b, "%-10s %-12.3f %-12.3f %-12.3f %-12.3f\n", "AVG(E)", r.TruthAvg, r.HTAvg, r.IPFAvg, r.ClosedAvg)
	return b.String()
}

// RunAblationMechanism draws a biased flights sample with a *known*
// predicate-biased mechanism and compares the three estimators.
func RunAblationMechanism(cfg FlightsConfig) (*MechanismResult, error) {
	cfg = cfg.withDefaults()
	pop := dataset.Flights(dataset.FlightsConfig{N: cfg.PopN, Seed: cfg.Seed})
	pred, err := sql.ParseExpr("elapsed_time > 200")
	if err != nil {
		return nil, err
	}
	mech := mechanism.Biased{Pred: pred, PTrue: 0.15, PFalse: 0.01}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	sample, err := mechanism.Sample(pop, mech, "s", rng)
	if err != nil {
		return nil, err
	}
	em, err := marginal.FromTableBinned("e", pop, []string{"elapsed_time"},
		map[string]float64{"elapsed_time": MarginalBinWidths["elapsed_time"]})
	if err != nil {
		return nil, err
	}

	res := &MechanismResult{}
	res.TruthCount = float64(pop.Len())
	if res.TruthAvg, err = flightsTruthScalar(pop, "SELECT AVG(elapsed_time) FROM Flights"); err != nil {
		return nil, err
	}
	res.ClosedCount = float64(sample.Len())
	avgOf := func(weights []float64) (float64, error) {
		es, err := sample.FloatColumn("elapsed_time")
		if err != nil {
			return 0, err
		}
		var sw, swx float64
		for i, e := range es {
			sw += weights[i]
			swx += weights[i] * e
		}
		return swx / sw, nil
	}
	ones := make([]float64, sample.Len())
	for i := range ones {
		ones[i] = 1
	}
	if res.ClosedAvg, err = avgOf(ones); err != nil {
		return nil, err
	}
	ht, err := mechanism.InverseWeights(sample, mech)
	if err != nil {
		return nil, err
	}
	for _, w := range ht {
		res.HTCount += w
	}
	if res.HTAvg, err = avgOf(ht); err != nil {
		return nil, err
	}
	ipfW, _, err := ipf.Fit(sample, []*marginal.Marginal{em}, cfg.IPF)
	if err != nil {
		return nil, err
	}
	for _, w := range ipfW {
		res.IPFCount += w
	}
	if res.IPFAvg, err = avgOf(ipfW); err != nil {
		return nil, err
	}
	return res, nil
}

// --- A4: query-population vs global-population marginal scope ---

// ScopeResult compares Fig 3's two dashed paths: fitting the view-restricted
// sample directly to query-population marginals vs fitting the whole sample
// to global marginals and answering through the view.
type ScopeResult struct {
	Truth       float64
	QueryScope  float64
	GlobalScope float64
	QueryErr    float64
	GlobalErr   float64
}

// String renders the comparison.
func (r *ScopeResult) String() string {
	return fmt.Sprintf(
		"Ablation A4 — marginal scope (AVG(distance) over long flights)\n"+
			"truth=%.2f query-scope=%.2f (err %.4f) global-scope=%.2f (err %.4f)",
		r.Truth, r.QueryScope, r.QueryErr, r.GlobalScope, r.GlobalErr)
}

// RunAblationMarginalScope builds a LongFlights query population over the
// flights GP and answers AVG(distance) with each marginal scope.
func RunAblationMarginalScope(cfg FlightsConfig) (*ScopeResult, error) {
	setup, err := BuildFlights(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := setup.Engine.ExecScript(`
		CREATE POPULATION LongFlights AS (SELECT * FROM Flights WHERE elapsed_time > 200);
	`); err != nil {
		return nil, err
	}
	truth, err := flightsTruthScalar(setup.Pop, "SELECT AVG(distance) FROM Flights WHERE elapsed_time > 200")
	if err != nil {
		return nil, err
	}
	run := func() (float64, error) {
		sel, err := sql.ParseQuery("SELECT SEMI-OPEN AVG(distance) FROM LongFlights")
		if err != nil {
			return 0, err
		}
		res, err := setup.Engine.Query(sel)
		if err != nil {
			return 0, err
		}
		return res.Rows[0][0].Float64()
	}
	// Global scope first (LongFlights has no own marginals yet).
	globalAns, err := run()
	if err != nil {
		return nil, err
	}
	// Attach query-population marginals: distance histogram of the true
	// long-flight subpopulation.
	longPop, err := exec.Materialize(setup.Pop, mustQuery("SELECT carrier, taxi_out, taxi_in, elapsed_time, distance FROM Flights WHERE elapsed_time > 200"), exec.Options{}, "longpop")
	if err != nil {
		return nil, err
	}
	dm, err := marginal.FromTableBinned("LongFlights_D", longPop, []string{"distance"},
		map[string]float64{"distance": MarginalBinWidths["distance"]})
	if err != nil {
		return nil, err
	}
	if err := setup.Engine.AddMarginal("LongFlights", dm); err != nil {
		return nil, err
	}
	queryAns, err := run()
	if err != nil {
		return nil, err
	}
	return &ScopeResult{
		Truth:       truth,
		QueryScope:  queryAns,
		GlobalScope: globalAns,
		QueryErr:    stats.PercentDiff(queryAns, truth),
		GlobalErr:   stats.PercentDiff(globalAns, truth),
	}, nil
}

func mustQuery(q string) *sql.Select {
	sel, err := sql.ParseQuery(q)
	if err != nil {
		panic(err)
	}
	return sel
}

// --- A5: Bayesian network vs M-SWG ---

// BayesRow is one COUNT query's outcome.
type BayesRow struct {
	Query    string
	Truth    float64
	BayesEst float64
	MSWGEst  float64
	BayesErr float64
	MSWGErr  float64
}

// BayesResult is the A5 ablation: the explicit-model alternative of Sec 4.2
// against the implicit M-SWG on COUNT queries.
type BayesResult struct{ Rows []BayesRow }

// String renders the comparison.
func (r *BayesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A5 — Bayesian network (explicit) vs M-SWG (implicit), COUNT queries\n")
	fmt.Fprintf(&b, "%-12s %-12s %-10s %-12s %-10s %s\n", "truth", "bayes", "err", "mswg", "err", "query")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12.0f %-12.0f %-10.4f %-12.0f %-10.4f %s\n",
			row.Truth, row.BayesEst, row.BayesErr, row.MSWGEst, row.MSWGErr, row.Query)
	}
	return b.String()
}

// RunAblationBayesVsSWG answers COUNT(*) range queries with (a) a Chow–Liu
// network learned on the IPF-reweighted sample and (b) the OPEN path.
func RunAblationBayesVsSWG(cfg FlightsConfig) (*BayesResult, error) {
	setup, err := BuildFlights(cfg)
	if err != nil {
		return nil, err
	}
	// IPF-calibrate the sample, then fit the tree on the weighted sample
	// (the Themis recipe: IPF reweighting feeding an explicit model).
	smp, _ := setup.Engine.Catalog().Sample("FlightsSample")
	gp, _ := setup.Engine.Catalog().Population("Flights")
	w, _, err := ipf.Fit(smp.Table, gp.MarginalList(), cfg.IPF)
	if err != nil {
		return nil, err
	}
	weighted := smp.Table.Clone("weighted")
	if err := weighted.SetWeights(w); err != nil {
		return nil, err
	}
	net, err := bayes.Learn(weighted, bayes.Options{Bins: 24})
	if err != nil {
		return nil, err
	}

	queries := []string{
		"SELECT COUNT(*) FROM Flights WHERE elapsed_time > 200",
		"SELECT COUNT(*) FROM Flights WHERE elapsed_time < 200",
		"SELECT COUNT(*) FROM Flights WHERE distance > 1000",
		"SELECT COUNT(*) FROM Flights WHERE taxi_out > 20",
	}
	rng := rand.New(rand.NewSource(setup.Cfg.Seed + 31))
	out := &BayesResult{}
	for _, q := range queries {
		truth, err := flightsTruthScalar(setup.Pop, q)
		if err != nil {
			return nil, err
		}
		sel := mustQuery(q)
		bayesEst, err := bayesCount(net, sel, rng)
		if err != nil {
			return nil, err
		}
		openSel := mustQuery(withVisibility(q, "OPEN"))
		res, err := setup.Engine.Query(openSel)
		if err != nil {
			return nil, err
		}
		mswgEst, err := res.Rows[0][0].Float64()
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, BayesRow{
			Query:    q,
			Truth:    truth,
			BayesEst: bayesEst,
			MSWGEst:  mswgEst,
			BayesErr: stats.PercentDiff(bayesEst, truth),
			MSWGErr:  stats.PercentDiff(mswgEst, truth),
		})
	}
	return out, nil
}

// bayesCount estimates COUNT(*) WHERE pred as P(pred)·Total via forward
// sampling from the network.
func bayesCount(net *bayes.Network, sel *sql.Select, rng *rand.Rand) (float64, error) {
	if sel.Where == nil {
		return net.Total(), nil
	}
	sc := dataset.FlightsSchema
	p, err := net.EstimateProb(func(row []value.Value) (bool, error) {
		return expr.Truthy(sel.Where, &expr.Binding{Schema: sc, Row: row})
	}, 30000, rng)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(p) {
		return 0, fmt.Errorf("bench: NaN probability")
	}
	return p * net.Total(), nil
}

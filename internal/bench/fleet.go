package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"mosaic"
	"mosaic/client"
	"mosaic/internal/coord"
	"mosaic/internal/server"
	"mosaic/internal/wire"
)

// FleetConfig tunes the multi-process fleet experiment: for each swept shard
// count N, boot N internal/server shard instances on loopback listeners from
// the identical snapshot, front them with a mosaic-coord scatter-gather
// coordinator, and drive the aggregate workload through real HTTP. Every
// fleet answer is compared byte-for-byte against an in-process reference
// engine opened with Options.Shards: N — the fleet's determinism contract —
// so a mismatch means the coordinator, wire codec, or merge order corrupted
// an answer, never noise.
type FleetConfig struct {
	Flights FlightsConfig
	Shards  []int // fleet sizes to sweep; default {1, 2, 4}
	Rounds  int   // times the query set is driven per fleet size; default 4
	Clients int   // concurrent clients driving the coordinator; default 4
}

func (c FleetConfig) withDefaults() FleetConfig {
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4}
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	return c
}

// fleetBenchQueries is the scatter workload: every mergeable aggregate kind,
// grouped and global, over both stored-weight paths, plus HAVING/ORDER/LIMIT
// post-aggregation — and two non-aggregate shapes that exercise the
// coordinator's pass-through relay to shard 0.
var fleetBenchQueries = []string{
	"SELECT CLOSED COUNT(*) FROM Flights",
	"SELECT CLOSED AVG(distance) FROM Flights WHERE elapsed_time > 200",
	"SELECT CLOSED SUM(distance), MIN(taxi_out), MAX(taxi_in) FROM Flights",
	"SELECT CLOSED carrier, COUNT(*) AS n, AVG(distance) FROM Flights GROUP BY carrier HAVING n > 10 ORDER BY carrier LIMIT 5",
	"SELECT SEMI-OPEN AVG(taxi_in) FROM Flights WHERE elapsed_time < 200",
	"SELECT SEMI-OPEN carrier, AVG(elapsed_time) FROM Flights WHERE distance > 1000 GROUP BY carrier ORDER BY carrier",
	"SELECT COUNT(*), AVG(distance) FROM FlightsSample",
	"SELECT carrier, distance FROM FlightsSample WHERE distance > 2000",
	"SELECT DISTINCT carrier FROM FlightsSample",
}

// FleetRow is one swept fleet size.
type FleetRow struct {
	Shards      int
	Queries     int
	Secs        float64
	QPS         float64
	Scattered   int64 // coordinator queries answered by partial fan-out
	PassThrough int64 // coordinator queries relayed whole to shard 0
}

// FleetResult is the full sweep.
type FleetResult struct {
	Rows     []FleetRow
	Verified int // fleet answers checked byte-for-byte against Options.Shards: N references
}

// String renders the sweep as an aligned table.
func (r *FleetResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet — multi-process scatter-gather vs in-process Options.Shards: N (%d answers verified byte-for-byte)\n", r.Verified)
	b.WriteString("  shards  queries   secs      q/s  scattered  pass-through\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %6d  %7d  %6.2f  %7.1f  %9d  %12d\n",
			row.Shards, row.Queries, row.Secs, row.QPS, row.Scattered, row.PassThrough)
	}
	return b.String()
}

// fleetShard is one booted in-process shard server.
type fleetShard struct {
	srv     *server.Server
	httpSrv *http.Server
	url     string
}

func bootFleetShard(script string, opts *mosaic.Options) (*fleetShard, error) {
	db := mosaic.Open(opts)
	if err := db.Restore(script); err != nil {
		return nil, fmt.Errorf("bench: restore shard: %v", err)
	}
	srv, err := server.New(server.Config{DB: db, RequestTimeout: 5 * time.Minute})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	return &fleetShard{srv: srv, httpSrv: httpSrv, url: "http://" + ln.Addr().String()}, nil
}

func (s *fleetShard) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = s.httpSrv.Shutdown(ctx)
	cancel()
	s.srv.Close()
}

// RunFleet builds the flights workload once, then for each swept shard count
// boots a fresh fleet (N shard servers + coordinator, all real HTTP on
// loopback), verifies every answer byte-for-byte against an in-process
// reference at Options.Shards: N, and reports coordinator throughput along
// with its scatter/pass-through split.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	cfg = cfg.withDefaults()
	setup, err := BuildFlights(cfg.Flights)
	if err != nil {
		return nil, err
	}
	script, err := setup.Engine.DumpScript()
	if err != nil {
		return nil, err
	}
	baseOpts := mosaic.Options{
		Seed:        setup.Cfg.Seed,
		OpenSamples: setup.Cfg.OpenSamples,
		SWG:         setup.Cfg.SWG,
		IPF:         setup.Cfg.IPF,
	}

	out := &FleetResult{}
	for _, n := range cfg.Shards {
		row, verified, err := runFleetOnce(script, baseOpts, n, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: fleet of %d: %v", n, err)
		}
		out.Rows = append(out.Rows, row)
		out.Verified += verified
	}
	return out, nil
}

func runFleetOnce(script string, baseOpts mosaic.Options, n int, cfg FleetConfig) (FleetRow, int, error) {
	shards := make([]*fleetShard, 0, n)
	defer func() {
		for _, s := range shards {
			s.close()
		}
	}()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := bootFleetShard(script, &baseOpts)
		if err != nil {
			return FleetRow{}, 0, err
		}
		shards = append(shards, s)
		urls[i] = s.url
	}

	c, err := coord.New(coord.Config{
		Shards:         urls,
		Retry:          client.RetryPolicy{MaxRetries: 2, BaseBackoff: 10 * time.Millisecond, Budget: 30 * time.Second},
		RequestTimeout: 5 * time.Minute,
	})
	if err != nil {
		return FleetRow{}, 0, err
	}
	syncCtx, syncCancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = c.Sync(syncCtx)
	syncCancel()
	if err != nil {
		return FleetRow{}, 0, fmt.Errorf("fleet sync: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return FleetRow{}, 0, err
	}
	coordSrv := &http.Server{Handler: c.Handler()}
	go func() { _ = coordSrv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = coordSrv.Shutdown(ctx)
		cancel()
	}()
	coordURL := "http://" + ln.Addr().String()

	// The reference engine IS the contract: same snapshot, same options, with
	// in-process scatter-gather at the same shard count.
	refOpts := baseOpts
	refOpts.Shards = n
	ref := mosaic.Open(&refOpts)
	if err := ref.Restore(script); err != nil {
		return FleetRow{}, 0, fmt.Errorf("restore reference: %v", err)
	}

	// Warm both sides and pin the reference renderings.
	refs := make([]string, len(fleetBenchQueries))
	warm := client.New(coordURL)
	verified := 0
	for i, q := range fleetBenchQueries {
		want, err := ref.Query(q)
		if err != nil {
			return FleetRow{}, 0, fmt.Errorf("reference %q: %v", q, err)
		}
		refs[i] = renderResult(want)
		got, err := warm.Query(q)
		if err != nil {
			return FleetRow{}, 0, fmt.Errorf("fleet %q: %v", q, err)
		}
		if renderResult(got) != refs[i] {
			return FleetRow{}, 0, fmt.Errorf("%q: fleet answer diverged from Options.Shards: %d reference", q, n)
		}
		verified++
	}

	// Timed run: concurrent clients replay the verified set through the
	// coordinator, still byte-checking every answer.
	total := cfg.Clients * cfg.Rounds * len(fleetBenchQueries)
	errs := make([]error, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < cfg.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			cc := client.New(coordURL)
			for r := 0; r < cfg.Rounds; r++ {
				for i, q := range fleetBenchQueries {
					res, err := cc.Query(q)
					if err != nil {
						errs[cl] = fmt.Errorf("client %d round %d %q: %v", cl, r, q, err)
						return
					}
					if renderResult(res) != refs[i] {
						errs[cl] = fmt.Errorf("client %d round %d %q: fleet answer diverged", cl, r, q)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return FleetRow{}, 0, err
		}
	}
	verified += total

	var st wire.CoordStatsResponse
	resp, err := http.Get(coordURL + "/statsz")
	if err != nil {
		return FleetRow{}, 0, err
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return FleetRow{}, 0, fmt.Errorf("statsz: %v", err)
	}

	return FleetRow{
		Shards:      n,
		Queries:     total,
		Secs:        secs,
		QPS:         float64(total) / secs,
		Scattered:   st.Scattered,
		PassThrough: st.PassThrough,
	}, verified, nil
}

package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"mosaic/internal/exec"
	"mosaic/internal/sql"
)

// ConcurrentConfig tunes the multi-client throughput experiment: one shared
// engine on the flights workload, swept over client counts. It measures the
// benefit of the engine's read-path concurrency (queries share a read lock;
// models and IPF fits are cached and served read-only).
type ConcurrentConfig struct {
	Flights          FlightsConfig
	Clients          []int // client counts to sweep; default {1, 2, 4, 8}
	QueriesPerClient int   // queries each client issues; default 8
}

func (c ConcurrentConfig) withDefaults() ConcurrentConfig {
	if len(c.Clients) == 0 {
		c.Clients = []int{1, 2, 4, 8}
	}
	if c.QueriesPerClient <= 0 {
		c.QueriesPerClient = 8
	}
	return c
}

// ConcurrentRow is one swept client count.
type ConcurrentRow struct {
	Clients int
	Queries int
	Secs    float64
	QPS     float64
}

// ConcurrentResult is the full sweep.
type ConcurrentResult struct {
	Rows     []ConcurrentRow
	WarmSecs float64 // cache warm-up (model training + first IPF fit)
}

// String renders the sweep as an aligned table.
func (r *ConcurrentResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrent clients — shared-engine query throughput (warm caches; warm-up %.1fs)\n", r.WarmSecs)
	b.WriteString("  clients  queries   secs      q/s   speedup\n")
	var base float64
	for _, row := range r.Rows {
		if base == 0 {
			base = row.QPS
		}
		fmt.Fprintf(&b, "  %7d  %7d  %6.2f  %7.1f  %6.2fx\n",
			row.Clients, row.Queries, row.Secs, row.QPS, row.QPS/base)
	}
	return b.String()
}

// RunConcurrentClients measures query throughput of one shared engine under
// concurrent clients on the flights workload. All caches are warmed first
// (the M-SWG trains once, IPF fits once) so the sweep isolates the read
// path. Every client's every answer is compared against the single-threaded
// reference — a mismatch means a concurrency bug, not noise, because answers
// are deterministic for a fixed seed regardless of scheduling.
func RunConcurrentClients(cfg ConcurrentConfig) (*ConcurrentResult, error) {
	cfg = cfg.withDefaults()
	setup, err := BuildFlights(cfg.Flights)
	if err != nil {
		return nil, err
	}
	eng := setup.Engine

	// The job mix: every Table 2 query, SEMI-OPEN and OPEN.
	type job struct {
		sel *sql.Select
		ref string
	}
	var jobs []job
	for _, vis := range []string{"SEMI-OPEN", "OPEN"} {
		for _, q := range FlightQueries {
			sel, err := sql.ParseQuery(withVisibility(q.SQL, vis))
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, job{sel: sel})
		}
	}

	// Warm every cache and record the reference answers.
	warmStart := time.Now()
	for i := range jobs {
		res, err := eng.Query(jobs[i].sel)
		if err != nil {
			return nil, fmt.Errorf("bench: warm-up query %d: %v", i, err)
		}
		jobs[i].ref = renderResult(res)
	}
	warm := time.Since(warmStart).Seconds()

	out := &ConcurrentResult{WarmSecs: warm}
	for _, clients := range cfg.Clients {
		total := clients * cfg.QueriesPerClient
		errs := make([]error, clients)
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < cfg.QueriesPerClient; i++ {
					j := jobs[(c+i)%len(jobs)]
					res, err := eng.Query(j.sel)
					if err != nil {
						errs[c] = err
						return
					}
					if got := renderResult(res); got != j.ref {
						errs[c] = fmt.Errorf("bench: client %d query %d: answer diverged from reference", c, i)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		secs := time.Since(start).Seconds()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		qps := float64(total) / secs
		out.Rows = append(out.Rows, ConcurrentRow{Clients: clients, Queries: total, Secs: secs, QPS: qps})
	}
	return out, nil
}

// renderResult serializes a full result (columns, rows, values) for exact
// equality comparison.
func renderResult(res *exec.Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, ","))
	b.WriteByte('\n')
	for _, row := range res.Rows {
		for _, v := range row {
			b.WriteString(v.HashKey())
			b.WriteByte('\x1f')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

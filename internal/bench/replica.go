package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"mosaic"
	"mosaic/client"
	"mosaic/internal/coord"
	"mosaic/internal/repl"
	"mosaic/internal/server"
	"mosaic/internal/wire"
)

// ReplicaConfig tunes the follower read-scaling experiment: for each swept
// replica count R, boot one primary internal/server instance, R followers
// bootstrapped from its snapshot over real HTTP, and a coordinator
// registered with all of them, then drive the read workload with concurrent
// clients. Every routed answer — whichever backend served it — is compared
// byte-for-byte against an in-process reference engine, so the sweep
// measures read scaling without ever trusting it: a replica serving stale
// or divergent bytes fails the run, it does not skew a curve.
type ReplicaConfig struct {
	Flights  FlightsConfig
	Replicas []int // follower counts to sweep; default {0, 1, 2}
	Rounds   int   // times the query set is driven per replica count; default 4
	Clients  int   // concurrent clients driving the coordinator; default 4
}

func (c ReplicaConfig) withDefaults() ReplicaConfig {
	if len(c.Replicas) == 0 {
		c.Replicas = []int{0, 1, 2}
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	return c
}

// ReplicaRow is one swept follower count.
type ReplicaRow struct {
	Replicas     int     `json:"replicas"`
	Queries      int     `json:"queries"`
	Secs         float64 `json:"secs"`
	QPS          float64 `json:"qps"`
	PrimaryReads int64   `json:"primary_reads"`
	ReplicaReads int64   `json:"replica_reads"`
	Failovers    int64   `json:"failovers"`
}

// ReplicaResult is the full sweep.
type ReplicaResult struct {
	Rows     []ReplicaRow `json:"rows"`
	Verified int          `json:"verified"` // answers byte-checked against the in-process reference
}

// String renders the sweep as an aligned table.
func (r *ReplicaResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replica — follower read scaling, coordinator-routed vs in-process reference (%d answers verified byte-for-byte)\n", r.Verified)
	b.WriteString("  replicas  queries   secs      q/s  primary-reads  replica-reads  failovers\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %8d  %7d  %6.2f  %7.1f  %13d  %13d  %9d\n",
			row.Replicas, row.Queries, row.Secs, row.QPS, row.PrimaryReads, row.ReplicaReads, row.Failovers)
	}
	return b.String()
}

// JSON renders the machine-readable report for CI artifacts.
func (r *ReplicaResult) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// replicaFollower is one booted in-process follower: a fresh DB replicating
// the primary plus the read-only serving layer in front of it.
type replicaFollower struct {
	f       *repl.Follower
	srv     *server.Server
	httpSrv *http.Server
	url     string
}

func bootReplicaFollower(primary string, opts *mosaic.Options) (*replicaFollower, error) {
	db := mosaic.Open(opts)
	f, err := repl.NewFollower(repl.Config{
		Primary:      primary,
		DB:           db,
		PollInterval: 50 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = f.Start(ctx)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("bench: follower bootstrap: %v", err)
	}
	srv, err := server.New(server.Config{DB: db, RequestTimeout: 5 * time.Minute, Follower: f})
	if err != nil {
		f.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		f.Close()
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	return &replicaFollower{f: f, srv: srv, httpSrv: httpSrv, url: "http://" + ln.Addr().String()}, nil
}

func (s *replicaFollower) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = s.httpSrv.Shutdown(ctx)
	cancel()
	s.srv.Close()
	s.f.Close()
}

// RunReplica builds the flights workload once, then for each swept follower
// count boots a primary + followers + coordinator (all real HTTP on
// loopback), verifies every routed answer byte-for-byte against an
// in-process reference, and reports read throughput along with the
// primary/replica routing split.
func RunReplica(cfg ReplicaConfig) (*ReplicaResult, error) {
	cfg = cfg.withDefaults()
	setup, err := BuildFlights(cfg.Flights)
	if err != nil {
		return nil, err
	}
	script, err := setup.Engine.DumpScript()
	if err != nil {
		return nil, err
	}
	baseOpts := mosaic.Options{
		Seed:        setup.Cfg.Seed,
		OpenSamples: setup.Cfg.OpenSamples,
		SWG:         setup.Cfg.SWG,
		IPF:         setup.Cfg.IPF,
	}

	out := &ReplicaResult{}
	for _, r := range cfg.Replicas {
		row, verified, err := runReplicaOnce(script, baseOpts, r, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: %d replicas: %v", r, err)
		}
		out.Rows = append(out.Rows, row)
		out.Verified += verified
	}
	return out, nil
}

func runReplicaOnce(script string, baseOpts mosaic.Options, nReplicas int, cfg ReplicaConfig) (ReplicaRow, int, error) {
	primary, err := bootFleetShard(script, &baseOpts)
	if err != nil {
		return ReplicaRow{}, 0, err
	}
	defer primary.close()
	followers := make([]*replicaFollower, 0, nReplicas)
	defer func() {
		for _, f := range followers {
			f.close()
		}
	}()
	replicas := make(map[int][]string)
	for i := 0; i < nReplicas; i++ {
		f, err := bootReplicaFollower(primary.url, &baseOpts)
		if err != nil {
			return ReplicaRow{}, 0, err
		}
		followers = append(followers, f)
		replicas[0] = append(replicas[0], f.url)
	}

	c, err := coord.New(coord.Config{
		Shards:              []string{primary.url},
		Replicas:            replicas,
		ReplicaPollInterval: 20 * time.Millisecond,
		Retry:               client.RetryPolicy{MaxRetries: 2, BaseBackoff: 10 * time.Millisecond, Budget: 30 * time.Second},
		RequestTimeout:      5 * time.Minute,
	})
	if err != nil {
		return ReplicaRow{}, 0, err
	}
	defer c.Close()
	syncCtx, syncCancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = c.Sync(syncCtx)
	syncCancel()
	if err != nil {
		return ReplicaRow{}, 0, fmt.Errorf("fleet sync: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ReplicaRow{}, 0, err
	}
	coordSrv := &http.Server{Handler: c.Handler()}
	go func() { _ = coordSrv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = coordSrv.Shutdown(ctx)
		cancel()
	}()
	coordURL := "http://" + ln.Addr().String()

	// Wait for the coordinator's poller to see every follower caught up, so
	// the timed run actually exercises replica routing.
	if err := waitReplicasCaughtUp(coordURL, nReplicas, 10*time.Second); err != nil {
		return ReplicaRow{}, 0, err
	}

	// The reference IS the contract: same snapshot, same options, in-process.
	ref := mosaic.Open(&baseOpts)
	if err := ref.Restore(script); err != nil {
		return ReplicaRow{}, 0, fmt.Errorf("restore reference: %v", err)
	}
	refs := make([]string, len(fleetBenchQueries))
	warm := client.New(coordURL)
	verified := 0
	for i, q := range fleetBenchQueries {
		want, err := ref.Query(q)
		if err != nil {
			return ReplicaRow{}, 0, fmt.Errorf("reference %q: %v", q, err)
		}
		refs[i] = renderResult(want)
		got, err := warm.Query(q)
		if err != nil {
			return ReplicaRow{}, 0, fmt.Errorf("fleet %q: %v", q, err)
		}
		if renderResult(got) != refs[i] {
			return ReplicaRow{}, 0, fmt.Errorf("%q: routed answer diverged from the reference", q)
		}
		verified++
	}

	// Timed run: concurrent clients replay the verified set through the
	// coordinator, still byte-checking every answer.
	total := cfg.Clients * cfg.Rounds * len(fleetBenchQueries)
	errs := make([]error, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < cfg.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			cc := client.New(coordURL)
			for r := 0; r < cfg.Rounds; r++ {
				for i, q := range fleetBenchQueries {
					res, err := cc.Query(q)
					if err != nil {
						errs[cl] = fmt.Errorf("client %d round %d %q: %v", cl, r, q, err)
						return
					}
					if renderResult(res) != refs[i] {
						errs[cl] = fmt.Errorf("client %d round %d %q: routed answer diverged", cl, r, q)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return ReplicaRow{}, 0, err
		}
	}
	verified += total

	st, err := fetchCoordStats(coordURL)
	if err != nil {
		return ReplicaRow{}, 0, err
	}
	if nReplicas > 0 && st.ReplicaReads == 0 {
		return ReplicaRow{}, 0, fmt.Errorf("%d followers registered but no read was routed to any of them", nReplicas)
	}
	return ReplicaRow{
		Replicas:     nReplicas,
		Queries:      total,
		Secs:         secs,
		QPS:          float64(total) / secs,
		PrimaryReads: st.PrimaryReads,
		ReplicaReads: st.ReplicaReads,
		Failovers:    st.Failovers,
	}, verified, nil
}

func fetchCoordStats(coordURL string) (*wire.CoordStatsResponse, error) {
	resp, err := http.Get(coordURL + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st wire.CoordStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("statsz: %v", err)
	}
	return &st, nil
}

func waitReplicasCaughtUp(coordURL string, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		st, err := fetchCoordStats(coordURL)
		if err == nil {
			caught := 0
			for _, b := range st.Backends {
				if b.Role == "replica" && b.CaughtUp {
					caught++
				}
			}
			if caught == want {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("coordinator never saw %d caught-up replicas", want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package wire

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"mosaic/internal/exec"
	"mosaic/internal/sql"
	"mosaic/internal/value"
)

var partialKinds = []sql.AggKind{sql.AggCount, sql.AggSum, sql.AggAvg, sql.AggMin, sql.AggMax}

// clonePartial deep-copies one aggregate's states.
func clonePartial(st *exec.PartialStates) *exec.PartialStates {
	return &exec.PartialStates{
		Kind:   st.Kind,
		Count:  append([]float64(nil), st.Count...),
		SumW:   append([]float64(nil), st.SumW...),
		SumWX:  append([]float64(nil), st.SumWX...),
		MinMax: append([]value.Value(nil), st.MinMax...),
		Seen:   append([]bool(nil), st.Seen...),
	}
}

// randFloat draws floats across the full dynamic range, including subnormals,
// ±Inf, and NaN (normalized to the canonical NaN — the codec does not
// preserve NaN payloads, and no aggregate can observe them).
func randFloat(rng *rand.Rand) float64 {
	switch rng.Intn(8) {
	case 0:
		return math.Float64frombits(rng.Uint64()&^(uint64(0x7FF)<<52) | uint64(rng.Intn(2))<<63) // subnormal or zero
	case 1:
		return math.Inf(1 - 2*rng.Intn(2))
	case 2:
		return math.NaN()
	default:
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) {
			return math.NaN()
		}
		return f
	}
}

func randValue(rng *rand.Rand) value.Value {
	switch rng.Intn(4) {
	case 0:
		return value.Int(int64(rng.Uint64()))
	case 1:
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) {
			f = math.NaN()
		}
		return value.Float(f)
	case 2:
		return value.Bool(rng.Intn(2) == 0)
	default:
		buf := make([]byte, rng.Intn(12))
		for i := range buf {
			buf[i] = byte(' ' + rng.Intn(95))
		}
		return value.Text(string(buf))
	}
}

// randPartial builds one aggregate's states for n groups by accumulating
// random weighted inputs through the real AggState algebra.
func randPartial(rng *rand.Rand, kind sql.AggKind, n, accums int) *exec.PartialStates {
	st := exec.NewPartialStates(kind, n)
	for i := 0; i < accums; i++ {
		g := rng.Intn(n)
		w := randFloat(rng)
		switch kind {
		case sql.AggCount:
			st.Count[g] += w
		case sql.AggSum, sql.AggAvg:
			st.SumW[g] += w
			st.SumWX[g] += w * randFloat(rng)
			st.Seen[g] = true
		case sql.AggMin:
			v := randValue(rng)
			if !st.Seen[g] || value.Compare(v, st.MinMax[g]) < 0 {
				st.MinMax[g] = v
			}
			st.Seen[g] = true
		case sql.AggMax:
			v := randValue(rng)
			if !st.Seen[g] || value.Compare(v, st.MinMax[g]) > 0 {
				st.MinMax[g] = v
			}
			st.Seen[g] = true
		}
	}
	return st
}

// bitsEqual compares floats by bit pattern — the codec's contract is
// bit-exactness, which float equality cannot express (-0 == +0 under ==).
// The one sanctioned exception: all NaNs are equal, because the wire form
// canonicalizes NaN payload bits and no aggregate can observe them.
func bitsEqual(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// finalizedEqual compares Finalize outputs by hash key, with the same
// NaN-payload exemption as bitsEqual for float results.
func finalizedEqual(a, b value.Value) bool {
	if a.HashKey() == b.HashKey() {
		return true
	}
	if a.Kind() == value.KindFloat && b.Kind() == value.KindFloat {
		return math.IsNaN(a.AsFloat()) && math.IsNaN(b.AsFloat())
	}
	return false
}

func statesBitIdentical(t *testing.T, tag string, got, want *exec.PartialStates) {
	t.Helper()
	if got.Kind != want.Kind {
		t.Fatalf("%s: kind %v, want %v", tag, got.Kind, want.Kind)
	}
	check := func(name string, g, w []float64) {
		if len(g) != len(w) {
			t.Fatalf("%s: %s length %d, want %d", tag, name, len(g), len(w))
		}
		for i := range g {
			if !bitsEqual(g[i], w[i]) {
				t.Errorf("%s: %s[%d] = %x, want %x", tag, name, i, math.Float64bits(g[i]), math.Float64bits(w[i]))
			}
		}
	}
	check("Count", got.Count, want.Count)
	check("SumW", got.SumW, want.SumW)
	check("SumWX", got.SumWX, want.SumWX)
	if len(got.Seen) != len(want.Seen) {
		t.Fatalf("%s: Seen length %d, want %d", tag, len(got.Seen), len(want.Seen))
	}
	for i := range got.Seen {
		if got.Seen[i] != want.Seen[i] {
			t.Errorf("%s: Seen[%d] = %v, want %v", tag, i, got.Seen[i], want.Seen[i])
		}
	}
	if len(got.MinMax) != len(want.MinMax) {
		t.Fatalf("%s: MinMax length %d, want %d", tag, len(got.MinMax), len(want.MinMax))
	}
	for i := range got.MinMax {
		if !finalizedEqual(got.MinMax[i], want.MinMax[i]) {
			t.Errorf("%s: MinMax[%d] = %s, want %s", tag, i, got.MinMax[i], want.MinMax[i])
		}
	}
}

// roundTripMergeCheck is the property both the unit test and the fuzz target
// assert: serializing shard A's states, shipping them through JSON, decoding,
// and merging with shard B must be bit-identical (states AND finalized
// outputs) to merging the original in-process states — the exact guarantee
// that makes fleet answers equal to Options.Shards: N.
func roundTripMergeCheck(t *testing.T, a, b *exec.PartialStates, n int) {
	t.Helper()
	ref := clonePartial(a)
	for g := 0; g < n; g++ {
		ref.MergeGroup(g, b, g)
	}

	w, err := EncodePartialStates(a, n)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var w2 PartialStatesWire
	if err := json.Unmarshal(raw, &w2); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePartialStates(w2, n)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	statesBitIdentical(t, "pre-merge", got, a)
	for g := 0; g < n; g++ {
		got.MergeGroup(g, b, g)
	}
	statesBitIdentical(t, "post-merge", got, ref)
	for g := 0; g < n; g++ {
		gv, rv := got.Finalize(g), ref.Finalize(g)
		if !finalizedEqual(gv, rv) {
			t.Errorf("Finalize(%d) = %s, want %s", g, gv, rv)
		}
	}
}

// TestPartialStatesRoundTripDeterministic pins the codec on a fixed seed for
// every aggregate kind — the always-on companion of the fuzz target.
func TestPartialStatesRoundTripDeterministic(t *testing.T) {
	for _, kind := range partialKinds {
		rng := rand.New(rand.NewSource(42))
		const n = 7
		a := randPartial(rng, kind, n, 64)
		b := randPartial(rng, kind, n, 64)
		roundTripMergeCheck(t, a, b, n)
	}
}

// TestPartialRoundTripRebuildsGroupKeys: EncodePartial omits the gather keys
// and DecodePartial rebuilds them from the key values, so the decoded key
// space can never diverge from what travelled.
func TestPartialRoundTripRebuildsGroupKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := &exec.ShardPartial{Rows: 3}
	for g := 0; g < 4; g++ {
		kv := []value.Value{randValue(rng), value.Null()}
		p.KeyVals = append(p.KeyVals, kv)
		p.Keys = append(p.Keys, exec.GroupKey(kv))
	}
	p.States = []*exec.PartialStates{
		randPartial(rng, sql.AggCount, 4, 16),
		randPartial(rng, sql.AggAvg, 4, 16),
	}
	w, err := EncodePartial(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	if w.Generation != 9 || !w.Handled || w.Rows != 3 {
		t.Fatalf("header = %+v", w)
	}
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var w2 PartialResponse
	if err := json.Unmarshal(raw, &w2); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePartial(&w2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != p.Rows || len(got.Keys) != len(p.Keys) {
		t.Fatalf("decoded shape %d keys/%d rows, want %d/%d", len(got.Keys), got.Rows, len(p.Keys), p.Rows)
	}
	for g := range p.Keys {
		if got.Keys[g] != p.Keys[g] {
			t.Errorf("rebuilt key[%d] = %q, want %q", g, got.Keys[g], p.Keys[g])
		}
	}
	for ai := range p.States {
		statesBitIdentical(t, "states", got.States[ai], p.States[ai])
	}
}

// TestDecodePartialStatesRejectsLengthMismatch: a shard answer whose arrays
// do not cover the advertised group count must fail decoding loudly, never
// zero-fill into a silently wrong merge.
func TestDecodePartialStatesRejectsLengthMismatch(t *testing.T) {
	st := exec.NewPartialStates(sql.AggSum, 3)
	w, err := EncodePartialStates(st, 3)
	if err != nil {
		t.Fatal(err)
	}
	w.SumW = w.SumW[:2]
	if _, err := DecodePartialStates(w, 3); err == nil {
		t.Error("truncated sum_w decoded without error")
	}
	if _, err := DecodePartialStates(PartialStatesWire{Kind: "median"}, 1); err == nil {
		t.Error("unknown kind decoded without error")
	}
}

// FuzzPartialStatesRoundTrip drives the scatter-gather wire codec with
// randomized states: whatever a shard accumulates, serialize → JSON →
// deserialize → merge must be bit-identical to the in-process merge.
func FuzzPartialStatesRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(4), uint16(32))
	f.Add(int64(2), uint8(1), uint8(1), uint16(100))
	f.Add(int64(3), uint8(2), uint8(16), uint16(7))
	f.Add(int64(4), uint8(3), uint8(3), uint16(0))
	f.Add(int64(5), uint8(4), uint8(9), uint16(255))
	f.Fuzz(func(t *testing.T, seed int64, kindSel, nGroups uint8, accums uint16) {
		kind := partialKinds[int(kindSel)%len(partialKinds)]
		n := int(nGroups)%32 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randPartial(rng, kind, n, int(accums)%512)
		b := randPartial(rng, kind, n, int(accums)%512)
		roundTripMergeCheck(t, a, b, n)
	})
}

// Wire codec for the fleet's scatter-gather protocol: POST /v1/partial asks
// one shard process for its PartialAggregate half, and the coordinator
// gathers the decoded ShardPartials in fixed shard order through the same
// exec.GatherPartials the in-process engine uses.
//
// Floats travel as Go's shortest re-parseable decimal form (FormatFloat
// 'g'/-1), which round-trips every finite float64 bit-exactly, plus "NaN",
// "+Inf", and "-Inf"; NaN payload bits are not preserved, but no aggregate
// ever observes them (NaN compares and formats identically regardless of
// payload). Bit-exact partial states are what make fleet answers
// bit-identical to in-process Options.Shards: N.
package wire

import (
	"fmt"
	"strconv"

	"mosaic/internal/exec"
	"mosaic/internal/sql"
	"mosaic/internal/value"
)

// PartialRequest is the body of POST /v1/partial: run the per-shard partial
// aggregate plan for shard `shard` of `shards` over the serving process's
// full data copy.
type PartialRequest struct {
	Query  string `json:"query"`
	Params []Cell `json:"params,omitempty"`
	Shard  int    `json:"shard"`
	Shards int    `json:"shards"`
	// Generation, when CheckGeneration is set, is the coordinator's view of
	// the fleet's DDL/DML generation counter; the shard refuses with 409
	// when its own counter differs (its data diverged from the fleet's).
	Generation      uint64 `json:"generation,omitempty"`
	CheckGeneration bool   `json:"check_generation,omitempty"`
}

// PartialStatesWire is the wire form of one exec.PartialStates: the
// kind-relevant arrays, floats in bit-exact string form, extrema as tagged
// cells. Array lengths must equal the partial's group count.
type PartialStatesWire struct {
	Kind   string   `json:"kind"` // "count" | "sum" | "avg" | "min" | "max"
	Count  []string `json:"count,omitempty"`
	SumW   []string `json:"sum_w,omitempty"`
	SumWX  []string `json:"sum_wx,omitempty"`
	MinMax []Cell   `json:"min_max,omitempty"`
	Seen   []bool   `json:"seen,omitempty"`
}

// PartialResponse is the body of a successful POST /v1/partial. Handled
// mirrors exec.PartialAggregate's handled flag: false means the query shape
// is not partial-executable on this engine (OPEN, non-aggregate, row-path
// only) and the coordinator must pass the whole query through instead.
type PartialResponse struct {
	Handled    bool                `json:"handled"`
	Generation uint64              `json:"generation"`
	Rows       int                 `json:"rows,omitempty"`   // rows the shard slice scanned
	Groups     [][]Cell            `json:"groups,omitempty"` // per local group: its key values
	States     []PartialStatesWire `json:"states,omitempty"`
}

// CoordStatsResponse is the body of the fleet coordinator's GET /statsz.
type CoordStatsResponse struct {
	UptimeSecs  float64  `json:"uptime_secs"`
	Shards      []string `json:"shards"`     // primary base URLs, fixed fan-out order
	Generation  uint64   `json:"generation"` // fleet DDL/DML generation
	Queries     int64    `json:"queries"`
	Scattered   int64    `json:"scattered"`    // queries answered by partial fan-out
	PassThrough int64    `json:"pass_through"` // queries relayed whole to shard 0's backends
	Execs       int64    `json:"execs"`
	Explains    int64    `json:"explains"`
	Unavailable int64    `json:"unavailable"`  // 503s served (shard failures, divergence)
	ShardErrors int64    `json:"shard_errors"` // backend calls that failed after retries
	// ReplicaReads/PrimaryReads split successful read routing by role, and
	// Failovers counts reads rerouted after a backend failed — the
	// fleet-wide view of the per-backend counters in Backends.
	PrimaryReads int64 `json:"primary_reads,omitempty"`
	ReplicaReads int64 `json:"replica_reads,omitempty"`
	Failovers    int64 `json:"failovers,omitempty"`
	// Backends reports every read backend (primaries and replicas) with its
	// routing counters, observed generation, and lag behind the fleet.
	Backends []BackendStats `json:"backends,omitempty"`
}

// CoordHealthResponse is the body of the coordinator's GET /healthz: the
// coordinator itself is alive; per-shard and per-replica liveness is
// reported alongside (replica keys are "shard/URL").
type CoordHealthResponse struct {
	Status     string          `json:"status"` // "ok" | "degraded"
	UptimeSecs float64         `json:"uptime_secs"`
	Shards     map[string]bool `json:"shards"`
	Replicas   map[string]bool `json:"replicas,omitempty"`
}

// encodeFloat is the bit-exact float64 → string encoding shared with Cell's
// float kind.
func encodeFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func encodeFloats(fs []float64) []string {
	if fs == nil {
		return nil
	}
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = encodeFloat(f)
	}
	return out
}

func decodeFloats(ss []string, n int, field string) ([]float64, error) {
	if ss == nil {
		return nil, nil
	}
	if len(ss) != n {
		return nil, fmt.Errorf("wire: partial %s has %d entries for %d groups", field, len(ss), n)
	}
	out := make([]float64, len(ss))
	for i, s := range ss {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("wire: partial %s[%d] %q: %v", field, i, s, err)
		}
		out[i] = f
	}
	return out, nil
}

// aggKindName maps an exec aggregate kind to its wire tag.
func aggKindName(k sql.AggKind) (string, error) {
	switch k {
	case sql.AggCount:
		return "count", nil
	case sql.AggSum:
		return "sum", nil
	case sql.AggAvg:
		return "avg", nil
	case sql.AggMin:
		return "min", nil
	case sql.AggMax:
		return "max", nil
	default:
		return "", fmt.Errorf("wire: aggregate kind %v has no wire form", k)
	}
}

func aggKindFromName(s string) (sql.AggKind, error) {
	switch s {
	case "count":
		return sql.AggCount, nil
	case "sum":
		return sql.AggSum, nil
	case "avg":
		return sql.AggAvg, nil
	case "min":
		return sql.AggMin, nil
	case "max":
		return sql.AggMax, nil
	default:
		return sql.AggNone, fmt.Errorf("wire: unknown aggregate kind %q", s)
	}
}

// EncodePartialStates converts one aggregate's group-indexed states to wire
// form. n is the partial's group count; every kind-relevant array must cover
// exactly n groups.
func EncodePartialStates(st *exec.PartialStates, n int) (PartialStatesWire, error) {
	name, err := aggKindName(st.Kind)
	if err != nil {
		return PartialStatesWire{}, err
	}
	w := PartialStatesWire{Kind: name}
	check := func(l int, field string) error {
		if l != n {
			return fmt.Errorf("wire: partial %s has %d entries for %d groups", field, l, n)
		}
		return nil
	}
	switch st.Kind {
	case sql.AggCount:
		if err := check(len(st.Count), "count"); err != nil {
			return PartialStatesWire{}, err
		}
		w.Count = encodeFloats(st.Count)
	case sql.AggSum, sql.AggAvg:
		if err := check(len(st.SumW), "sum_w"); err != nil {
			return PartialStatesWire{}, err
		}
		if err := check(len(st.SumWX), "sum_wx"); err != nil {
			return PartialStatesWire{}, err
		}
		if err := check(len(st.Seen), "seen"); err != nil {
			return PartialStatesWire{}, err
		}
		w.SumW = encodeFloats(st.SumW)
		w.SumWX = encodeFloats(st.SumWX)
		w.Seen = append([]bool(nil), st.Seen...)
	case sql.AggMin, sql.AggMax:
		if err := check(len(st.MinMax), "min_max"); err != nil {
			return PartialStatesWire{}, err
		}
		if err := check(len(st.Seen), "seen"); err != nil {
			return PartialStatesWire{}, err
		}
		w.MinMax = make([]Cell, n)
		for i, v := range st.MinMax {
			w.MinMax[i] = EncodeValue(v)
		}
		w.Seen = append([]bool(nil), st.Seen...)
	}
	return w, nil
}

// DecodePartialStates converts a wire states block back to the identical
// exec.PartialStates for n groups.
func DecodePartialStates(w PartialStatesWire, n int) (*exec.PartialStates, error) {
	kind, err := aggKindFromName(w.Kind)
	if err != nil {
		return nil, err
	}
	st := &exec.PartialStates{Kind: kind}
	switch kind {
	case sql.AggCount:
		if st.Count, err = decodeFloats(w.Count, n, "count"); err != nil {
			return nil, err
		}
		if st.Count == nil {
			st.Count = make([]float64, n)
		}
	case sql.AggSum, sql.AggAvg:
		if st.SumW, err = decodeFloats(w.SumW, n, "sum_w"); err != nil {
			return nil, err
		}
		if st.SumWX, err = decodeFloats(w.SumWX, n, "sum_wx"); err != nil {
			return nil, err
		}
		if len(w.Seen) != n {
			return nil, fmt.Errorf("wire: partial seen has %d entries for %d groups", len(w.Seen), n)
		}
		st.Seen = append([]bool(nil), w.Seen...)
		if st.SumW == nil {
			st.SumW = make([]float64, n)
		}
		if st.SumWX == nil {
			st.SumWX = make([]float64, n)
		}
	case sql.AggMin, sql.AggMax:
		if len(w.MinMax) != n {
			return nil, fmt.Errorf("wire: partial min_max has %d entries for %d groups", len(w.MinMax), n)
		}
		if len(w.Seen) != n {
			return nil, fmt.Errorf("wire: partial seen has %d entries for %d groups", len(w.Seen), n)
		}
		st.MinMax = make([]value.Value, n)
		for i, c := range w.MinMax {
			v, err := DecodeValue(c)
			if err != nil {
				return nil, fmt.Errorf("wire: partial min_max[%d]: %v", i, err)
			}
			st.MinMax[i] = v
		}
		st.Seen = append([]bool(nil), w.Seen...)
	}
	return st, nil
}

// EncodePartial converts a shard's scatter output to its wire response.
// Group keys are not sent — they are a pure function of the key values and
// DecodePartial rebuilds them, so the gather key space cannot diverge from
// the values on the wire.
func EncodePartial(p *exec.ShardPartial, generation uint64) (*PartialResponse, error) {
	out := &PartialResponse{Handled: true, Generation: generation, Rows: p.Rows}
	n := len(p.KeyVals)
	if n > 0 {
		out.Groups = make([][]Cell, n)
		for g, kv := range p.KeyVals {
			out.Groups[g] = EncodeValues(kv)
			if out.Groups[g] == nil {
				out.Groups[g] = []Cell{}
			}
		}
	}
	out.States = make([]PartialStatesWire, len(p.States))
	for ai, st := range p.States {
		w, err := EncodePartialStates(st, n)
		if err != nil {
			return nil, err
		}
		out.States[ai] = w
	}
	return out, nil
}

// DecodePartial converts a wire response back to a ShardPartial that is
// value-identical to the encoded one, rebuilding the gather keys from the
// decoded key values.
func DecodePartial(w *PartialResponse) (*exec.ShardPartial, error) {
	if !w.Handled {
		return nil, fmt.Errorf("wire: decoding an unhandled partial response")
	}
	n := len(w.Groups)
	p := &exec.ShardPartial{
		Keys:    make([]string, n),
		KeyVals: make([][]value.Value, n),
		States:  make([]*exec.PartialStates, len(w.States)),
		Rows:    w.Rows,
	}
	for g, cells := range w.Groups {
		kv, err := DecodeValues(cells)
		if err != nil {
			return nil, fmt.Errorf("wire: partial group %d: %v", g, err)
		}
		if kv == nil {
			kv = []value.Value{}
		}
		p.KeyVals[g] = kv
		p.Keys[g] = exec.GroupKey(kv)
	}
	for ai, sw := range w.States {
		st, err := DecodePartialStates(sw, n)
		if err != nil {
			return nil, err
		}
		p.States[ai] = st
	}
	return p, nil
}

package wire

import (
	"encoding/json"
	"math"
	"testing"

	"mosaic/internal/exec"
	"mosaic/internal/value"
)

func TestValueRoundTripExact(t *testing.T) {
	vals := []value.Value{
		value.Null(),
		value.Int(0),
		value.Int(-1),
		value.Int(math.MaxInt64),
		value.Int(math.MinInt64),
		value.Int(1 << 60), // beyond float64's integer precision
		value.Float(0),
		value.Float(math.Copysign(0, -1)),
		value.Float(1.0 / 3.0),
		value.Float(math.MaxFloat64),
		value.Float(math.SmallestNonzeroFloat64),
		value.Float(6.02e23),
		value.Text(""),
		value.Text("it's \"quoted\" — и юникод\x00\x1f"),
		value.Bool(true),
		value.Bool(false),
	}
	for _, v := range vals {
		c := EncodeValue(v)
		// Through JSON, as on the wire.
		raw, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Cell
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal %v: %v", v, err)
		}
		got, err := DecodeValue(back)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if got.Kind() != v.Kind() {
			t.Errorf("kind changed: %v → %v", v.Kind(), got.Kind())
		}
		if got.HashKey() != v.HashKey() || got.String() != v.String() {
			t.Errorf("value changed: %s → %s", v, got)
		}
	}
}

func TestFloatBitExactness(t *testing.T) {
	// Bit-exact, not just Equal: the serve path must answer byte-for-byte
	// identically to an in-process engine.
	f := 0.1 + 0.2 // 0.30000000000000004
	got, err := DecodeValue(EncodeValue(value.Float(f)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.AsFloat()) != math.Float64bits(f) {
		t.Errorf("float bits changed: %x → %x", math.Float64bits(f), math.Float64bits(got.AsFloat()))
	}
}

func TestResultRoundTrip(t *testing.T) {
	res := &exec.Result{
		Columns: []string{"g", "COUNT(*)"},
		Rows: [][]value.Value{
			{value.Text("a"), value.Float(12.5)},
			{value.Null(), value.Int(3)},
		},
	}
	raw, err := json.Marshal(EncodeResult(res))
	if err != nil {
		t.Fatal(err)
	}
	var w Result
	if err := json.Unmarshal(raw, &w); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(&w)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Columns) != 2 || back.Columns[1] != "COUNT(*)" {
		t.Errorf("columns = %v", back.Columns)
	}
	for ri := range res.Rows {
		for ci := range res.Rows[ri] {
			if back.Rows[ri][ci].HashKey() != res.Rows[ri][ci].HashKey() {
				t.Errorf("cell (%d,%d) changed: %s → %s", ri, ci, res.Rows[ri][ci], back.Rows[ri][ci])
			}
		}
	}

	// nil results (DDL slots) pass through.
	if EncodeResult(nil) != nil {
		t.Error("EncodeResult(nil) != nil")
	}
	if got, err := DecodeResult(nil); err != nil || got != nil {
		t.Errorf("DecodeResult(nil) = %v, %v", got, err)
	}
}

func TestDecodeRejectsMalformedCells(t *testing.T) {
	for _, c := range []Cell{
		{K: "int", V: "12.5"},
		{K: "float", V: "abc"},
		{K: "bool", V: "maybe"},
		{K: "struct", V: "x"},
	} {
		if _, err := DecodeValue(c); err == nil {
			t.Errorf("DecodeValue(%v) should fail", c)
		}
	}
}

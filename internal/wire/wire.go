// Package wire defines the JSON protocol shared by the Mosaic HTTP server
// (internal/server) and the Go client (mosaic/client).
//
// Result cells travel as tagged strings rather than raw JSON scalars so that
// every value round-trips bit-exactly: floats use Go's shortest
// re-parseable formatting (a JSON number would survive too, but tagging
// keeps INT vs FLOAT vs BOOL distinguishable without schema context, and
// int64 values beyond 2^53 would lose precision in any JSON number).
package wire

import (
	"fmt"
	"strconv"

	"mosaic/internal/exec"
	"mosaic/internal/value"
)

// QueryRequest is the body of POST /v1/query and GET /v1/explain. Params
// bind the query's `?` placeholders in order; values travel as tagged cells
// (the same codec results use), so a bound query answers byte-identically to
// the same query with the literals inlined.
type QueryRequest struct {
	Query  string `json:"query"`
	Params []Cell `json:"params,omitempty"`
	// Generation, when CheckGeneration is set, pins the request to one fleet
	// state: the serving process refuses with 409 when its own (for a
	// follower: replicated) generation differs before or after execution.
	// The coordinator sets this on reads routed to replicas, so a follower
	// that lags — or catches up mid-query — can never contribute an answer
	// from a different generation than the primary's.
	Generation      uint64 `json:"generation,omitempty"`
	CheckGeneration bool   `json:"check_generation,omitempty"`
}

// ExecRequest is the body of POST /v1/exec: a semicolon-separated Mosaic
// script. Statements execute in order; SELECTs inside the script return
// their results in order (null for DDL/DML), mirroring mosaic.DB.Run.
type ExecRequest struct {
	Script string `json:"script"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Cell is one result value: K is the kind tag ("null", "int", "float",
// "text", "bool"); V is the payload (absent for null).
type Cell struct {
	K string `json:"k"`
	V string `json:"v,omitempty"`
}

// Result is the wire form of an exec.Result.
type Result struct {
	Columns []string `json:"columns"`
	Rows    [][]Cell `json:"rows"`
}

// ExecResponse is the body of a successful POST /v1/exec. Generation is the
// engine's DDL/DML generation counter after the script ran — the fleet
// coordinator's handshake for confirming every shard landed on the same
// state.
type ExecResponse struct {
	Results    []*Result `json:"results"`
	Generation uint64    `json:"generation"`
}

// HistogramSnapshot is the JSON form of one latency histogram in /statsz.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	MeanMs  float64          `json:"mean_ms"`
	Buckets map[string]int64 `json:"buckets"` // upper-bound label → count
}

// VisibilityStats is one visibility's counters in /statsz.
type VisibilityStats struct {
	Queries int64             `json:"queries"`
	Latency HistogramSnapshot `json:"latency"`
}

// ClassStats is one priority class's admission accounting in /statsz. The
// serving layer splits every counter by class (interactive vs batch) so
// overload behavior is observable per class: how much was admitted, shed up
// front (deadline unmeetable → 503 + Retry-After), rejected at the gate,
// timed out mid-execution, and how the latency distribution looks.
type ClassStats struct {
	Admitted   int64             `json:"admitted"`
	Shed       int64             `json:"shed"`
	Rejected   int64             `json:"rejected"`
	Timeouts   int64             `json:"timeouts"`
	Inflight   int64             `json:"inflight"`
	QueueDepth int64             `json:"queue_depth"`
	EWMAMs     float64           `json:"ewma_ms"` // the shedder's latency estimate
	Latency    HistogramSnapshot `json:"latency"`
}

// PlanCacheStats reports the server-side prepared-plan cache: hits mean a
// request skipped parse + plan entirely (plans self-invalidate on DDL/DML
// via the engine generation counter, so a hit is never stale).
type PlanCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// ShardStats reports the engine's sharded-execution counters: how many
// partial aggregate plans each range shard has served and how many rows each
// scanned. Present only when the engine runs with Shards > 1.
type ShardStats struct {
	Shards int     `json:"shards"`
	Scans  []int64 `json:"scans"` // per-shard partial-plan executions
	Rows   []int64 `json:"rows"`  // per-shard rows scanned
}

// StatsResponse is the body of GET /statsz.
type StatsResponse struct {
	UptimeSecs       float64                    `json:"uptime_secs"`
	Inflight         int64                      `json:"inflight"`
	Execs            int64                      `json:"execs"`
	Explains         int64                      `json:"explains"`
	QueryErrors      int64                      `json:"query_errors"`
	Rejected         int64                      `json:"rejected"`
	Shed             int64                      `json:"shed"`
	Timeouts         int64                      `json:"timeouts"`
	Cancelled        int64                      `json:"cancelled"`
	Visibilities     map[string]VisibilityStats `json:"visibilities"`
	Classes          map[string]ClassStats      `json:"classes,omitempty"`
	PlanCache        *PlanCacheStats            `json:"plan_cache,omitempty"`
	Snapshots        int64                      `json:"snapshots"`
	LastSnapshotUnix int64                      `json:"last_snapshot_unix,omitempty"`
	LastSnapshotSize int64                      `json:"last_snapshot_bytes,omitempty"`
	Sharding         *ShardStats                `json:"sharding,omitempty"`
	// Generation is the engine's DDL/DML generation counter — the fleet
	// coordinator probes it to (re)synchronize with a shard's state. On a
	// follower it is the replicated primary generation (the value reads are
	// gated on), not the local engine's counter.
	Generation uint64 `json:"generation"`
	// Partials counts /v1/partial plans served (fleet shard duty).
	Partials int64 `json:"partials,omitempty"`
	// Follower reports replication state when the process runs in follower
	// mode (mosaic-serve -follow).
	Follower *FollowerStats `json:"follower,omitempty"`
}

// EncodeValue converts a value.Value to its wire cell.
func EncodeValue(v value.Value) Cell {
	switch v.Kind() {
	case value.KindInt:
		return Cell{K: "int", V: strconv.FormatInt(v.AsInt(), 10)}
	case value.KindFloat:
		return Cell{K: "float", V: strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)}
	case value.KindText:
		return Cell{K: "text", V: v.AsText()}
	case value.KindBool:
		return Cell{K: "bool", V: strconv.FormatBool(v.AsBool())}
	default:
		return Cell{K: "null"}
	}
}

// DecodeValue converts a wire cell back to the identical value.Value.
func DecodeValue(c Cell) (value.Value, error) {
	switch c.K {
	case "null":
		return value.Null(), nil
	case "int":
		i, err := strconv.ParseInt(c.V, 10, 64)
		if err != nil {
			return value.Null(), fmt.Errorf("wire: bad int cell %q: %v", c.V, err)
		}
		return value.Int(i), nil
	case "float":
		f, err := strconv.ParseFloat(c.V, 64)
		if err != nil {
			return value.Null(), fmt.Errorf("wire: bad float cell %q: %v", c.V, err)
		}
		return value.Float(f), nil
	case "text":
		return value.Text(c.V), nil
	case "bool":
		b, err := strconv.ParseBool(c.V)
		if err != nil {
			return value.Null(), fmt.Errorf("wire: bad bool cell %q: %v", c.V, err)
		}
		return value.Bool(b), nil
	default:
		return value.Null(), fmt.Errorf("wire: unknown cell kind %q", c.K)
	}
}

// EncodeValues converts a value slice to wire cells (parameter encoding).
func EncodeValues(vals []value.Value) []Cell {
	if len(vals) == 0 {
		return nil
	}
	out := make([]Cell, len(vals))
	for i, v := range vals {
		out[i] = EncodeValue(v)
	}
	return out
}

// DecodeValues converts wire cells back to identical values (parameter
// decoding).
func DecodeValues(cells []Cell) ([]value.Value, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	out := make([]value.Value, len(cells))
	for i, c := range cells {
		v, err := DecodeValue(c)
		if err != nil {
			return nil, fmt.Errorf("wire: param %d: %v", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

// EncodeResult converts an engine result to its wire form. A nil result
// (DDL/DML slot in a script) encodes as nil.
func EncodeResult(res *exec.Result) *Result {
	if res == nil {
		return nil
	}
	out := &Result{Columns: append([]string(nil), res.Columns...), Rows: make([][]Cell, len(res.Rows))}
	for ri, row := range res.Rows {
		cells := make([]Cell, len(row))
		for ci, v := range row {
			cells[ci] = EncodeValue(v)
		}
		out.Rows[ri] = cells
	}
	return out
}

// DecodeResult converts a wire result back to an exec.Result that is
// value-identical to the encoded one. A nil wire result decodes to nil.
func DecodeResult(w *Result) (*exec.Result, error) {
	if w == nil {
		return nil, nil
	}
	out := &exec.Result{Columns: append([]string(nil), w.Columns...), Rows: make([][]value.Value, len(w.Rows))}
	for ri, cells := range w.Rows {
		row := make([]value.Value, len(cells))
		for ci, c := range cells {
			v, err := DecodeValue(c)
			if err != nil {
				return nil, fmt.Errorf("wire: row %d column %d: %v", ri, ci, err)
			}
			row[ci] = v
		}
		out.Rows[ri] = row
	}
	return out, nil
}

// Wire types for the replication protocol: GET /v1/snapshot hands a
// bootstrapping follower the full dump script plus the generation it
// captures; GET /v1/snapshot/delta?from=G hands a caught-up-to-G follower
// the exact statement suffix that advances it to the primary's current
// generation (410 Gone when G has fallen out of the primary's bounded
// statement log, telling the follower to re-bootstrap).
package wire

// SnapshotResponse is the body of GET /v1/snapshot: the primary's full dump
// script and the DDL/DML generation it captures, read under one lock
// acquisition — replaying Script yields the primary's state at exactly
// Generation.
type SnapshotResponse struct {
	Script     string `json:"script"`
	Generation uint64 `json:"generation"`
}

// DeltaStmt is one replicated statement: the exact SQL source the primary
// executed and whether that execution failed. Followers replay failed
// statements too (a failed mutation can leave deterministic partial effects
// behind) and verify that their own outcome matches Failed — a mismatch
// means divergence and forces a full re-bootstrap.
type DeltaStmt struct {
	Src    string `json:"src"`
	Failed bool   `json:"failed,omitempty"`
}

// DeltaResponse is the body of GET /v1/snapshot/delta?from=G: the statements
// advancing the primary from generation From (= the requested G) to
// Generation, in execution order. Empty Stmts with From == Generation means
// the follower is already caught up.
type DeltaResponse struct {
	From       uint64      `json:"from"`
	Generation uint64      `json:"generation"`
	Stmts      []DeltaStmt `json:"stmts,omitempty"`
}

// FollowerStats reports a follower's replication state in /statsz and
// /healthz: which primary it tails, the primary generation it has
// replicated, and how its sync loop has fared.
type FollowerStats struct {
	Primary string `json:"primary"`
	// Generation is the primary generation this follower has fully applied
	// — the value its generation-checked reads are gated on.
	Generation uint64 `json:"generation"`
	// LastSyncUnixMs is when the follower last confirmed it was caught up
	// (a successful sync, including an empty delta). 0 before the first.
	LastSyncUnixMs int64 `json:"last_sync_unix_ms,omitempty"`
	// Stale is set when the follower has not confirmed catch-up within its
	// configured staleness bound. Staleness degrades health reporting only;
	// read correctness is generation-gated, not time-gated.
	Stale        bool  `json:"stale,omitempty"`
	FullSyncs    int64 `json:"full_syncs"`
	DeltaSyncs   int64 `json:"delta_syncs"`
	AppliedStmts int64 `json:"applied_stmts"`
	// Truncations counts deltas refused with 410 Gone (requested generation
	// fell out of the primary's statement log) — each forces a full
	// re-bootstrap.
	Truncations int64 `json:"truncations"`
	SyncErrors  int64 `json:"sync_errors"`
}

// HealthResponse is the typed body of GET /healthz on mosaic-serve. Status
// is "ok" or "degraded" (a follower that has lost its primary or exceeded
// its staleness bound reports degraded while still serving generation-gated
// reads).
type HealthResponse struct {
	Status     string         `json:"status"`
	UptimeSecs float64        `json:"uptime_secs"`
	Follower   *FollowerStats `json:"follower,omitempty"`
}

// BackendStats is one read backend's routing accounting in the
// coordinator's /statsz. Primaries and replicas both appear, so the
// primary/replica routing split and each replica's lag are observable.
type BackendStats struct {
	Shard int    `json:"shard"`
	URL   string `json:"url"`
	Role  string `json:"role"` // "primary" | "replica"
	// Reads counts read requests (pass-through queries and scatter
	// partials) this backend answered successfully.
	Reads int64 `json:"reads"`
	// Failovers counts reads that failed on this backend and were rerouted
	// to another backend of the same shard.
	Failovers int64 `json:"failovers"`
	// Generation is the backend's last observed (replicated) generation;
	// Lag is how many generations it trails the fleet. Primaries are
	// authoritative (lag 0 by construction outside divergence).
	Generation uint64 `json:"generation"`
	Lag        uint64 `json:"lag"`
	// CaughtUp reports whether the backend is currently eligible for
	// generation-gated reads.
	CaughtUp bool    `json:"caught_up"`
	EWMAMs   float64 `json:"ewma_ms"` // observed read latency estimate
}

// Package schema describes the attribute layout of Mosaic relations.
package schema

import (
	"fmt"
	"strings"

	"mosaic/internal/value"
)

// Attribute is a single named, typed column.
type Attribute struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of attributes. Attribute names are
// case-insensitive and must be unique within a schema.
type Schema struct {
	attrs []Attribute
	index map[string]int // lower-cased name -> position
}

// New builds a Schema from attributes, validating name uniqueness.
func New(attrs ...Attribute) (*Schema, error) {
	s := &Schema{index: make(map[string]int, len(attrs))}
	for _, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema: empty attribute name")
		}
		key := strings.ToLower(a.Name)
		if _, dup := s.index[key]; dup {
			return nil, fmt.Errorf("schema: duplicate attribute %q", a.Name)
		}
		s.index[key] = len(s.attrs)
		s.attrs = append(s.attrs, a)
	}
	return s, nil
}

// MustNew is New but panics on error; for use with compile-time-known schemas.
func MustNew(attrs ...Attribute) *Schema {
	s, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// At returns the attribute at position i.
func (s *Schema) At(i int) Attribute { return s.attrs[i] }

// Attributes returns a copy of the attribute list.
func (s *Schema) Attributes() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Index returns the position of the named attribute (case-insensitive) and
// whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[strings.ToLower(name)]
	return i, ok
}

// Kind returns the type of the named attribute.
func (s *Schema) Kind(name string) (value.Kind, error) {
	i, ok := s.Index(name)
	if !ok {
		return value.KindNull, fmt.Errorf("schema: no attribute %q", name)
	}
	return s.attrs[i].Kind, nil
}

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Project returns a new schema containing only the named attributes, in the
// given order.
func (s *Schema) Project(names []string) (*Schema, []int, error) {
	attrs := make([]Attribute, 0, len(names))
	idxs := make([]int, 0, len(names))
	for _, n := range names {
		i, ok := s.Index(n)
		if !ok {
			return nil, nil, fmt.Errorf("schema: no attribute %q", n)
		}
		attrs = append(attrs, s.attrs[i])
		idxs = append(idxs, i)
	}
	ns, err := New(attrs...)
	if err != nil {
		return nil, nil, err
	}
	return ns, idxs, nil
}

// Contains reports whether every attribute of other appears in s with the
// same kind. The paper's Sec 4 assumption 1 (population attrs ⊆ sample attrs)
// is checked with this.
func (s *Schema) Contains(other *Schema) bool {
	for _, a := range other.attrs {
		i, ok := s.Index(a.Name)
		if !ok || s.attrs[i].Kind != a.Kind {
			return false
		}
	}
	return true
}

// Equal reports whether two schemas have identical names (case-insensitive)
// and kinds in the same order.
func (s *Schema) Equal(other *Schema) bool {
	if s.Len() != other.Len() {
		return false
	}
	for i := range s.attrs {
		if !strings.EqualFold(s.attrs[i].Name, other.attrs[i].Name) ||
			s.attrs[i].Kind != other.attrs[i].Kind {
			return false
		}
	}
	return true
}

// String renders the schema as "(a INT, b TEXT)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Name, a.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Validate checks a row of values against the schema, coercing INT↔FLOAT
// where needed, and returns the (possibly coerced) row.
func (s *Schema) Validate(row []value.Value) ([]value.Value, error) {
	if len(row) != len(s.attrs) {
		return nil, fmt.Errorf("schema: row has %d values, schema has %d attributes", len(row), len(s.attrs))
	}
	out := make([]value.Value, len(row))
	for i, v := range row {
		cv, err := value.Coerce(v, s.attrs[i].Kind)
		if err != nil {
			return nil, fmt.Errorf("schema: attribute %q: %v", s.attrs[i].Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

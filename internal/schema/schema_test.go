package schema

import (
	"testing"

	"mosaic/internal/value"
)

func mk(t *testing.T, attrs ...Attribute) *Schema {
	t.Helper()
	s, err := New(attrs...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewRejectsDuplicates(t *testing.T) {
	_, err := New(
		Attribute{Name: "a", Kind: value.KindInt},
		Attribute{Name: "A", Kind: value.KindText},
	)
	if err == nil {
		t.Error("case-insensitive duplicate should be rejected")
	}
	_, err = New(Attribute{Name: "", Kind: value.KindInt})
	if err == nil {
		t.Error("empty name should be rejected")
	}
}

func TestIndexCaseInsensitive(t *testing.T) {
	s := mk(t,
		Attribute{Name: "Country", Kind: value.KindText},
		Attribute{Name: "count", Kind: value.KindInt},
	)
	for _, name := range []string{"country", "COUNTRY", "Country"} {
		if i, ok := s.Index(name); !ok || i != 0 {
			t.Errorf("Index(%q) = %d, %v", name, i, ok)
		}
	}
	if _, ok := s.Index("missing"); ok {
		t.Error("missing attribute found")
	}
}

func TestKindLookup(t *testing.T) {
	s := mk(t, Attribute{Name: "x", Kind: value.KindFloat})
	k, err := s.Kind("X")
	if err != nil || k != value.KindFloat {
		t.Errorf("Kind: %v, %v", k, err)
	}
	if _, err := s.Kind("y"); err == nil {
		t.Error("Kind on missing attribute should fail")
	}
}

func TestProject(t *testing.T) {
	s := mk(t,
		Attribute{Name: "a", Kind: value.KindInt},
		Attribute{Name: "b", Kind: value.KindText},
		Attribute{Name: "c", Kind: value.KindFloat},
	)
	p, idxs, err := s.Project([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.At(0).Name != "c" || p.At(1).Name != "a" {
		t.Errorf("projection order wrong: %v", p.Names())
	}
	if idxs[0] != 2 || idxs[1] != 0 {
		t.Errorf("projection indices wrong: %v", idxs)
	}
	if _, _, err := s.Project([]string{"z"}); err == nil {
		t.Error("projecting missing attribute should fail")
	}
}

func TestContains(t *testing.T) {
	big := mk(t,
		Attribute{Name: "a", Kind: value.KindInt},
		Attribute{Name: "b", Kind: value.KindText},
	)
	small := mk(t, Attribute{Name: "B", Kind: value.KindText})
	if !big.Contains(small) {
		t.Error("big should contain small (case-insensitive)")
	}
	wrongKind := mk(t, Attribute{Name: "b", Kind: value.KindInt})
	if big.Contains(wrongKind) {
		t.Error("kind mismatch must not count as contained")
	}
	if small.Contains(big) {
		t.Error("small must not contain big")
	}
}

func TestEqual(t *testing.T) {
	a := mk(t, Attribute{Name: "x", Kind: value.KindInt})
	b := mk(t, Attribute{Name: "X", Kind: value.KindInt})
	c := mk(t, Attribute{Name: "x", Kind: value.KindFloat})
	if !a.Equal(b) {
		t.Error("case-insensitive equal failed")
	}
	if a.Equal(c) {
		t.Error("kind mismatch should not be equal")
	}
}

func TestValidateCoercesAndChecksArity(t *testing.T) {
	s := mk(t,
		Attribute{Name: "i", Kind: value.KindInt},
		Attribute{Name: "f", Kind: value.KindFloat},
	)
	row, err := s.Validate([]value.Value{value.Float(3.0), value.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Kind() != value.KindInt || row[0].AsInt() != 3 {
		t.Errorf("float->int coercion: %v", row[0])
	}
	if row[1].Kind() != value.KindFloat || row[1].AsFloat() != 2 {
		t.Errorf("int->float coercion: %v", row[1])
	}
	if _, err := s.Validate([]value.Value{value.Int(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := s.Validate([]value.Value{value.Text("x"), value.Int(1)}); err == nil {
		t.Error("text into int should fail")
	}
	// NULLs pass through.
	row, err = s.Validate([]value.Value{value.Null(), value.Null()})
	if err != nil || !row[0].IsNull() {
		t.Errorf("NULL validation: %v, %v", row, err)
	}
}

func TestStringRendering(t *testing.T) {
	s := mk(t,
		Attribute{Name: "a", Kind: value.KindInt},
		Attribute{Name: "b", Kind: value.KindText},
	)
	if got := s.String(); got != "(a INT, b TEXT)" {
		t.Errorf("String() = %q", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with duplicates should panic")
		}
	}()
	MustNew(Attribute{Name: "a", Kind: value.KindInt}, Attribute{Name: "a", Kind: value.KindInt})
}

func TestAttributesReturnsCopy(t *testing.T) {
	s := mk(t, Attribute{Name: "a", Kind: value.KindInt})
	attrs := s.Attributes()
	attrs[0].Name = "mutated"
	if s.At(0).Name != "a" {
		t.Error("Attributes() must return a copy")
	}
}

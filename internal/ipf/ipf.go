// Package ipf implements Iterative Proportional Fitting (Deming–Stephan
// raking, the paper's citation [13]; see also Sinkhorn scaling [27]). Given a
// weighted sample and a set of 1-/2-dimensional population marginals, IPF
// rescales tuple weights cell-by-cell until every marginal of the weighted
// sample matches the population marginal. This is Mosaic's SEMI-OPEN query
// evaluation technique when the sampling mechanism is unknown (Sec 4.1).
//
// IPF can only reweight tuples that exist: a marginal cell with positive
// target but no sample tuples is unreachable mass (those are exactly the
// false negatives SEMI-OPEN accepts, Sec 3.3). The Result reports it.
package ipf

import (
	"context"
	"fmt"
	"math"

	"mosaic/internal/marginal"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// Options tunes the fit.
type Options struct {
	MaxIters int     // maximum raking sweeps (default 200)
	Tol      float64 // max relative marginal error to declare convergence (default 1e-6)
	// KeepUnreachableTargets disables the renormalization of reachable cell
	// targets. By default, when a marginal has cells no sample tuple falls
	// into (e.g. the Gmail cells of a Yahoo-only sample), the reachable
	// cells' targets are scaled up so each marginal's reachable mass equals
	// the full population total. This matches the paper's Sec 2 semantics —
	// the reweighted Yahoo sample represents *all* UK migrants (UK, Yahoo,
	// 20000) — and keeps the marginal system consistent so raking
	// converges. With this flag set the raw targets are used and IPF may
	// oscillate between inconsistent marginals.
	KeepUnreachableTargets bool
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	return o
}

// Result describes a completed fit.
type Result struct {
	Iterations      int     // sweeps performed
	MaxRelErr       float64 // final max relative error over reachable cells
	Converged       bool
	UnreachableMass float64 // total target count in cells with no sample tuples
	ReachableTotal  float64 // total target count in reachable cells
}

// cellGroup is the tuple indices belonging to one marginal cell, with its
// target count.
type cellGroup struct {
	target float64
	rows   []int
}

// Fit computes IPF weights for the sample against the marginals. The input
// weights seed the iteration (the user's initial weights, Sec 3.2); they must
// be non-negative and not all zero. Fit does not modify the table; use Apply
// or Table.SetWeights with the returned weights.
func Fit(sample *table.Table, marginals []*marginal.Marginal, opts Options) ([]float64, Result, error) {
	return FitContext(context.Background(), sample, marginals, opts)
}

// FitContext is Fit with a cancellation context, checked once per raking
// sweep. A cancelled fit returns ctx.Err() without touching the sample (Fit
// rakes a private copy of the weights), so a later retry reproduces the
// uncancelled weights exactly.
func FitContext(ctx context.Context, sample *table.Table, marginals []*marginal.Marginal, opts Options) ([]float64, Result, error) {
	opts = opts.withDefaults()
	if len(marginals) == 0 {
		return nil, Result{}, fmt.Errorf("ipf: no marginals")
	}
	n := sample.Len()
	if n == 0 {
		return nil, Result{}, fmt.Errorf("ipf: empty sample %s", sample.Name())
	}

	// Pre-bucket tuple indices by marginal cell, keying on value codes over
	// the columnar snapshot: one snapshot (single lock acquisition) serves
	// every marginal, and per-row work is an array load plus one small-struct
	// map probe instead of building a HashKey string.
	snap := sample.Snapshot()
	groups := make([][]cellGroup, len(marginals))
	var unreachable, reachableTotal float64
	totals := make([]float64, len(marginals))
	for mi, m := range marginals {
		totals[mi] = m.Total()
		idxs := make([]int, len(m.Attrs))
		for ai, a := range m.Attrs {
			j, ok := sample.Schema().Index(a)
			if !ok {
				return nil, Result{}, fmt.Errorf("ipf: sample %s has no attribute %q required by marginal %s", sample.Name(), a, m.Name)
			}
			idxs[ai] = j
		}
		// Row codes per attribute, snapped to the marginal's bin grid.
		rowCls := make([][]value.Class, len(idxs))
		rowBits := make([][]uint64, len(idxs))
		for ai, j := range idxs {
			rowCls[ai], rowBits[ai] = snap.BinnedCodes(j, m.BinWidth(ai))
		}
		// Seed one slot per marginal cell, in cell order; cells whose TEXT
		// value the sample never interned cannot match any row and stay
		// unreachable.
		cells := m.Cells()
		slots := make([]*cellGroup, 0, len(cells))
		byCode := make(map[table.CellCode]*cellGroup, len(cells))
		for ci := range cells {
			g := &cellGroup{target: cells[ci].Count}
			slots = append(slots, g)
			if code, ok := snap.CellCodeOf(cells[ci].Vals); ok {
				byCode[code] = g
			}
		}
		for i := 0; i < n; i++ {
			code := table.CellCode{C0: rowCls[0][i], B0: rowBits[0][i]}
			if len(idxs) == 2 {
				code.C1, code.B1 = rowCls[1][i], rowBits[1][i]
			}
			g, ok := byCode[code]
			if !ok {
				// Tuple outside every marginal cell: it gets zero target,
				// i.e. IPF drives its weight to 0. Record as its own cell.
				g = &cellGroup{}
				byCode[code] = g
				slots = append(slots, g)
			}
			g.rows = append(g.rows, i)
		}
		gl := make([]cellGroup, 0, len(slots))
		var reach float64
		for _, g := range slots {
			if len(g.rows) == 0 {
				unreachable += g.target
				continue
			}
			reach += g.target
			gl = append(gl, *g)
		}
		reachableTotal += reach
		// Renormalize reachable targets to the marginal total so the
		// marginal system stays consistent over the sample's support.
		if !opts.KeepUnreachableTargets && reach > 0 && reach < totals[mi] {
			f := totals[mi] / reach
			for i := range gl {
				gl[i].target *= f
			}
		}
		groups[mi] = gl
	}

	w := sample.Weights()
	var seed float64
	for _, x := range w {
		if x < 0 {
			return nil, Result{}, fmt.Errorf("ipf: negative seed weight")
		}
		seed += x
	}
	if seed == 0 {
		return nil, Result{}, fmt.Errorf("ipf: all seed weights are zero")
	}

	res := Result{UnreachableMass: unreachable, ReachableTotal: reachableTotal / float64(len(marginals))}
	for iter := 1; iter <= opts.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, res, err
		}
		// One sweep: rake every marginal in turn.
		for _, gl := range groups {
			for _, g := range gl {
				var cur float64
				for _, r := range g.rows {
					cur += w[r]
				}
				switch {
				case cur == 0 && g.target == 0:
					// nothing to do
				case cur == 0:
					// All tuples in the cell have zero weight (seed was zero
					// or a previous zero-target cell overlapped). Restart
					// them uniformly at the target.
					per := g.target / float64(len(g.rows))
					for _, r := range g.rows {
						w[r] = per
					}
				default:
					f := g.target / cur
					for _, r := range g.rows {
						w[r] *= f
					}
				}
			}
		}
		res.Iterations = iter
		res.MaxRelErr = maxRelErr(groups, w)
		if res.MaxRelErr < opts.Tol {
			res.Converged = true
			break
		}
	}
	return w, res, nil
}

// Apply runs Fit and installs the weights on the sample.
func Apply(sample *table.Table, marginals []*marginal.Marginal, opts Options) (Result, error) {
	return ApplyContext(context.Background(), sample, marginals, opts)
}

// ApplyContext is Apply with a cancellation context: a cancelled fit leaves
// the sample's weights untouched (weights install only after the fit
// completes).
func ApplyContext(ctx context.Context, sample *table.Table, marginals []*marginal.Marginal, opts Options) (Result, error) {
	w, res, err := FitContext(ctx, sample, marginals, opts)
	if err != nil {
		return res, err
	}
	if err := sample.SetWeights(w); err != nil {
		return res, err
	}
	return res, nil
}

func maxRelErr(groups [][]cellGroup, w []float64) float64 {
	var worst float64
	for _, gl := range groups {
		for _, g := range gl {
			var cur float64
			for _, r := range g.rows {
				cur += w[r]
			}
			var e float64
			if g.target == 0 {
				e = cur // absolute residual for zero-target cells
			} else {
				e = math.Abs(cur-g.target) / g.target
			}
			if e > worst {
				worst = e
			}
		}
	}
	return worst
}

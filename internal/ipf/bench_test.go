package ipf

import (
	"fmt"
	"math/rand"
	"testing"

	"mosaic/internal/marginal"
	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// benchWorld builds an n-row sample over two categorical attributes with a
// 1-D marginal on each.
func benchWorld(n, cardA, cardB int) (*table.Table, []*marginal.Marginal) {
	sc := schema.MustNew(
		schema.Attribute{Name: "a", Kind: value.KindText},
		schema.Attribute{Name: "b", Kind: value.KindText},
	)
	rng := rand.New(rand.NewSource(1))
	tbl := table.New("s", sc)
	for i := 0; i < n; i++ {
		_ = tbl.Append([]value.Value{
			value.Text(fmt.Sprintf("a%d", rng.Intn(cardA))),
			value.Text(fmt.Sprintf("b%d", rng.Intn(cardB))),
		})
	}
	ma, _ := marginal.New("ma", []string{"a"})
	for i := 0; i < cardA; i++ {
		_ = ma.Add([]value.Value{value.Text(fmt.Sprintf("a%d", i))}, float64(100+rng.Intn(900)))
	}
	mb, _ := marginal.New("mb", []string{"b"})
	perB := ma.Total() / float64(cardB)
	for i := 0; i < cardB; i++ {
		_ = mb.Add([]value.Value{value.Text(fmt.Sprintf("b%d", i))}, perB)
	}
	return tbl, []*marginal.Marginal{ma, mb}
}

func BenchmarkFit10k(b *testing.B) {
	tbl, ms := benchWorld(10000, 20, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fit(tbl, ms, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFit1k(b *testing.B) {
	tbl, ms := benchWorld(1000, 10, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fit(tbl, ms, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

package ipf

import (
	"math"
	"testing"
	"testing/quick"

	"mosaic/internal/marginal"
	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

var sc2 = schema.MustNew(
	schema.Attribute{Name: "a", Kind: value.KindText},
	schema.Attribute{Name: "b", Kind: value.KindText},
)

func cell(t *testing.T, m *marginal.Marginal, count float64, vals ...string) {
	t.Helper()
	vv := make([]value.Value, len(vals))
	for i, s := range vals {
		vv[i] = value.Text(s)
	}
	if err := m.Add(vv, count); err != nil {
		t.Fatal(err)
	}
}

func row(t *testing.T, tbl *table.Table, a, b string) {
	t.Helper()
	if err := tbl.Append([]value.Value{value.Text(a), value.Text(b)}); err != nil {
		t.Fatal(err)
	}
}

// classic 2x2 contingency table example (Deming–Stephan).
func buildClassic(t *testing.T) (*table.Table, []*marginal.Marginal) {
	tbl := table.New("s", sc2)
	// One tuple per cell; IPF must find cell weights matching both margins.
	row(t, tbl, "x1", "y1")
	row(t, tbl, "x1", "y2")
	row(t, tbl, "x2", "y1")
	row(t, tbl, "x2", "y2")
	ma, _ := marginal.New("ma", []string{"a"})
	cell(t, ma, 60, "x1")
	cell(t, ma, 40, "x2")
	mb, _ := marginal.New("mb", []string{"b"})
	cell(t, mb, 70, "y1")
	cell(t, mb, 30, "y2")
	return tbl, []*marginal.Marginal{ma, mb}
}

func TestFitMatchesBothMarginals(t *testing.T) {
	tbl, ms := buildClassic(t)
	w, res, err := Fit(tbl, ms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge: %+v", res)
	}
	// Row order: (x1,y1),(x1,y2),(x2,y1),(x2,y2)
	x1 := w[0] + w[1]
	y1 := w[0] + w[2]
	if math.Abs(x1-60) > 1e-3 {
		t.Errorf("x1 margin = %g, want 60", x1)
	}
	if math.Abs(y1-70) > 1e-3 {
		t.Errorf("y1 margin = %g, want 70", y1)
	}
	var tot float64
	for _, x := range w {
		tot += x
	}
	if math.Abs(tot-100) > 1e-3 {
		t.Errorf("total = %g, want 100", tot)
	}
}

func TestFitWith2DMarginal(t *testing.T) {
	tbl := table.New("s", sc2)
	row(t, tbl, "x1", "y1")
	row(t, tbl, "x1", "y1") // two tuples share a cell
	row(t, tbl, "x2", "y2")
	m, _ := marginal.New("m", []string{"a", "b"})
	cell(t, m, 10, "x1", "y1")
	cell(t, m, 4, "x2", "y2")
	w, res, err := Fit(tbl, []*marginal.Marginal{m}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("2-D fit did not converge")
	}
	if math.Abs(w[0]+w[1]-10) > 1e-6 || math.Abs(w[2]-4) > 1e-6 {
		t.Errorf("weights = %v", w)
	}
	// Tuples sharing a cell split the mass evenly from a uniform seed.
	if math.Abs(w[0]-w[1]) > 1e-9 {
		t.Errorf("cell mass not split evenly: %v", w)
	}
}

func TestSeedWeightsInfluenceSplit(t *testing.T) {
	// Within a cell, IPF scales tuples proportionally to their seed weight.
	tbl := table.New("s", sc2)
	row(t, tbl, "x1", "y1")
	row(t, tbl, "x1", "y1")
	if err := tbl.SetWeights([]float64{1, 3}); err != nil {
		t.Fatal(err)
	}
	m, _ := marginal.New("m", []string{"a"})
	cell(t, m, 8, "x1")
	w, _, err := Fit(tbl, []*marginal.Marginal{m}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-2) > 1e-9 || math.Abs(w[1]-6) > 1e-9 {
		t.Errorf("seeded split = %v, want [2 6]", w)
	}
}

func TestUnreachableMassRenormalization(t *testing.T) {
	// Sample covers only Yahoo; the email marginal has Gmail mass too.
	tbl := table.New("s", sc2)
	row(t, tbl, "UK", "Yahoo")
	row(t, tbl, "FR", "Yahoo")
	me, _ := marginal.New("email", []string{"b"})
	cell(t, me, 30, "Yahoo")
	cell(t, me, 70, "Gmail") // unreachable
	mc, _ := marginal.New("country", []string{"a"})
	cell(t, mc, 60, "UK")
	cell(t, mc, 40, "FR")
	w, res, err := Fit(tbl, []*marginal.Marginal{me, mc}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnreachableMass != 70 {
		t.Errorf("unreachable mass = %g, want 70", res.UnreachableMass)
	}
	// Renormalized: the Yahoo tuples represent the whole population (100).
	if tot := w[0] + w[1]; math.Abs(tot-100) > 1e-3 {
		t.Errorf("renormalized total = %g, want 100", tot)
	}
	if math.Abs(w[0]-60) > 1e-3 {
		t.Errorf("UK weight = %g, want 60", w[0])
	}
}

func TestKeepUnreachableTargetsDisablesRenorm(t *testing.T) {
	tbl := table.New("s", sc2)
	row(t, tbl, "UK", "Yahoo")
	me, _ := marginal.New("email", []string{"b"})
	cell(t, me, 30, "Yahoo")
	cell(t, me, 70, "Gmail")
	w, _, err := Fit(tbl, []*marginal.Marginal{me}, Options{KeepUnreachableTargets: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-30) > 1e-6 {
		t.Errorf("raw-target weight = %g, want 30", w[0])
	}
}

func TestZeroTargetCellsDriveWeightToZero(t *testing.T) {
	// A sample tuple whose marginal cell is absent gets zero target.
	tbl := table.New("s", sc2)
	row(t, tbl, "UK", "Yahoo")
	row(t, tbl, "XX", "Yahoo") // XX not in the country marginal
	mc, _ := marginal.New("country", []string{"a"})
	cell(t, mc, 10, "UK")
	w, res, err := Fit(tbl, []*marginal.Marginal{mc}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge: %+v", res)
	}
	if w[1] != 0 {
		t.Errorf("zero-target tuple weight = %g, want 0", w[1])
	}
	if math.Abs(w[0]-10) > 1e-6 {
		t.Errorf("UK weight = %g", w[0])
	}
}

func TestFitErrors(t *testing.T) {
	tbl := table.New("s", sc2)
	m, _ := marginal.New("m", []string{"a"})
	cell(t, m, 5, "x")
	if _, _, err := Fit(tbl, []*marginal.Marginal{m}, Options{}); err == nil {
		t.Error("empty sample should fail")
	}
	row(t, tbl, "x", "y")
	if _, _, err := Fit(tbl, nil, Options{}); err == nil {
		t.Error("no marginals should fail")
	}
	bad, _ := marginal.New("bad", []string{"zzz"})
	cell(t, bad, 5, "x")
	if _, _, err := Fit(tbl, []*marginal.Marginal{bad}, Options{}); err == nil {
		t.Error("marginal over missing attribute should fail")
	}
	if err := tbl.SetWeights([]float64{0}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Fit(tbl, []*marginal.Marginal{m}, Options{}); err == nil {
		t.Error("all-zero seed should fail")
	}
}

func TestApplyInstallsWeights(t *testing.T) {
	tbl, ms := buildClassic(t)
	res, err := Apply(tbl, ms, Options{})
	if err != nil || !res.Converged {
		t.Fatalf("Apply: %v %+v", err, res)
	}
	if math.Abs(tbl.TotalWeight()-100) > 1e-3 {
		t.Errorf("installed total = %g", tbl.TotalWeight())
	}
}

func TestFitNonNegativityProperty(t *testing.T) {
	// Property: IPF weights are always non-negative and the fitted total
	// matches the marginal total for reachable-everywhere marginals.
	f := func(counts [4]uint8) bool {
		tbl := table.New("s", sc2)
		for _, ab := range [][2]string{{"x1", "y1"}, {"x1", "y2"}, {"x2", "y1"}, {"x2", "y2"}} {
			if err := tbl.Append([]value.Value{value.Text(ab[0]), value.Text(ab[1])}); err != nil {
				return false
			}
		}
		ma, _ := marginal.New("ma", []string{"a"})
		mb, _ := marginal.New("mb", []string{"b"})
		c := [4]float64{float64(counts[0]) + 1, float64(counts[1]) + 1, float64(counts[2]) + 1, float64(counts[3]) + 1}
		tot := c[0] + c[1] + c[2] + c[3]
		_ = ma.Add([]value.Value{value.Text("x1")}, c[0]+c[1])
		_ = ma.Add([]value.Value{value.Text("x2")}, c[2]+c[3])
		_ = mb.Add([]value.Value{value.Text("y1")}, c[0]+c[2])
		_ = mb.Add([]value.Value{value.Text("y2")}, c[1]+c[3])
		w, res, err := Fit(tbl, []*marginal.Marginal{ma, mb}, Options{})
		if err != nil || !res.Converged {
			return false
		}
		var sum float64
		for _, x := range w {
			if x < 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-tot) < 1e-3*tot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaxItersRespected(t *testing.T) {
	tbl, ms := buildClassic(t)
	_, res, err := Fit(tbl, ms, Options{MaxIters: 1, Tol: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
}

// Package bayes implements the explicit generative model the paper
// contrasts with the M-SWG (Sec 4.2): a tree-structured Bayesian network
// (Chow–Liu tree) learned from a weighted sample, as in the authors' prior
// Themis system [42]. Explicit models answer COUNT-style aggregates by
// direct inference without materializing tuples — at the cost of the
// independence assumptions the tree imposes, which Sec 4.2 warns cannot be
// verified without the population. The ablation harness compares it against
// the M-SWG (DESIGN.md A5).
//
// Continuous attributes are discretized into equi-width bins; the network
// stores a root marginal and per-edge conditional probability tables.
package bayes

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// Options tunes structure learning.
type Options struct {
	// Bins is the number of equi-width bins for numeric attributes
	// (default 16).
	Bins int
	// Laplace is the additive smoothing constant for CPTs (default 0.1).
	Laplace float64
}

func (o Options) withDefaults() Options {
	if o.Bins <= 0 {
		o.Bins = 16
	}
	if o.Laplace <= 0 {
		o.Laplace = 0.1
	}
	return o
}

// attrDomain is the discretized domain of one attribute.
type attrDomain struct {
	name    string
	numeric bool
	// numeric: bin edges (len bins+1); representative = bin midpoint.
	edges []float64
	// categorical: levels.
	levels []value.Value
	lvlIdx map[string]int
}

func (d *attrDomain) size() int {
	if d.numeric {
		return len(d.edges) - 1
	}
	return len(d.levels)
}

func (d *attrDomain) binOf(v value.Value) (int, error) {
	if d.numeric {
		f, err := v.Float64()
		if err != nil {
			return 0, err
		}
		n := d.size()
		if f <= d.edges[0] {
			return 0, nil
		}
		if f >= d.edges[n] {
			return n - 1, nil
		}
		i := sort.SearchFloat64s(d.edges, f) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i, nil
	}
	i, ok := d.lvlIdx[v.HashKey()]
	if !ok {
		return 0, fmt.Errorf("bayes: unseen level %s for %q", v, d.name)
	}
	return i, nil
}

// representative returns a value for bin i (midpoint for numeric bins).
func (d *attrDomain) representative(i int, kind value.Kind) value.Value {
	if !d.numeric {
		return d.levels[i]
	}
	mid := (d.edges[i] + d.edges[i+1]) / 2
	if kind == value.KindInt {
		return value.Int(int64(math.Round(mid)))
	}
	return value.Float(mid)
}

// Network is a learned Chow–Liu tree.
type Network struct {
	schemaNames []string
	kinds       []value.Kind
	domains     []*attrDomain
	parent      []int       // parent attribute index; -1 for the root
	order       []int       // topological sampling order
	rootProb    []float64   // P(root)
	cpt         [][]float64 // cpt[attr][parentBin*size+bin] = P(bin|parentBin)
	total       float64     // total weight the model represents
}

// Learn fits a Chow–Liu tree to the weighted sample. All schema attributes
// participate.
func Learn(t *table.Table, opts Options) (*Network, error) {
	opts = opts.withDefaults()
	sc := t.Schema()
	d := sc.Len()
	if d < 1 {
		return nil, fmt.Errorf("bayes: empty schema")
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("bayes: empty sample")
	}

	net := &Network{
		schemaNames: sc.Names(),
		kinds:       make([]value.Kind, d),
		domains:     make([]*attrDomain, d),
	}
	for i := 0; i < d; i++ {
		net.kinds[i] = sc.At(i).Kind
	}

	// Build domains.
	for i := 0; i < d; i++ {
		a := sc.At(i)
		dom := &attrDomain{name: a.Name}
		if a.Kind == value.KindText || a.Kind == value.KindBool {
			dom.lvlIdx = map[string]int{}
			t.Scan(func(row []value.Value, _ float64) bool {
				k := row[i].HashKey()
				if _, ok := dom.lvlIdx[k]; !ok {
					dom.lvlIdx[k] = len(dom.levels)
					dom.levels = append(dom.levels, row[i])
				}
				return true
			})
		} else {
			dom.numeric = true
			lo, hi := math.Inf(1), math.Inf(-1)
			var convErr error
			t.Scan(func(row []value.Value, _ float64) bool {
				f, err := row[i].Float64()
				if err != nil {
					convErr = err
					return false
				}
				if f < lo {
					lo = f
				}
				if f > hi {
					hi = f
				}
				return true
			})
			if convErr != nil {
				return nil, convErr
			}
			if hi == lo {
				hi = lo + 1
			}
			dom.edges = make([]float64, opts.Bins+1)
			for b := 0; b <= opts.Bins; b++ {
				dom.edges[b] = lo + (hi-lo)*float64(b)/float64(opts.Bins)
			}
		}
		net.domains[i] = dom
	}

	// Discretize all rows once.
	n := t.Len()
	bins := make([][]int, n)
	wts := make([]float64, n)
	ri := 0
	var binErr error
	t.Scan(func(row []value.Value, w float64) bool {
		br := make([]int, d)
		for i := 0; i < d; i++ {
			b, err := net.domains[i].binOf(row[i])
			if err != nil {
				binErr = err
				return false
			}
			br[i] = b
		}
		bins[ri] = br
		wts[ri] = w
		net.total += w
		ri++
		return true
	})
	if binErr != nil {
		return nil, binErr
	}
	if net.total <= 0 {
		return nil, fmt.Errorf("bayes: zero total weight")
	}

	// Pairwise mutual information on the discretized, weighted data.
	mi := make([][]float64, d)
	for i := range mi {
		mi[i] = make([]float64, d)
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			mi[i][j] = mutualInfo(bins, wts, i, j, net.domains[i].size(), net.domains[j].size(), net.total)
			mi[j][i] = mi[i][j]
		}
	}

	// Maximum spanning tree over MI (Prim's algorithm), rooted at 0.
	net.parent = make([]int, d)
	inTree := make([]bool, d)
	bestEdge := make([]float64, d)
	bestFrom := make([]int, d)
	for i := range bestEdge {
		bestEdge[i] = math.Inf(-1)
		bestFrom[i] = -1
		net.parent[i] = -1
	}
	inTree[0] = true
	net.order = []int{0}
	for i := 1; i < d; i++ {
		bestEdge[i] = mi[0][i]
		bestFrom[i] = 0
	}
	for len(net.order) < d {
		pick, pickV := -1, math.Inf(-1)
		for i := 0; i < d; i++ {
			if !inTree[i] && bestEdge[i] > pickV {
				pick, pickV = i, bestEdge[i]
			}
		}
		inTree[pick] = true
		net.parent[pick] = bestFrom[pick]
		net.order = append(net.order, pick)
		for i := 0; i < d; i++ {
			if !inTree[i] && mi[pick][i] > bestEdge[i] {
				bestEdge[i] = mi[pick][i]
				bestFrom[i] = pick
			}
		}
	}

	// Root marginal and CPTs with Laplace smoothing.
	rootSize := net.domains[0].size()
	net.rootProb = make([]float64, rootSize)
	for r := range bins {
		net.rootProb[bins[r][0]] += wts[r]
	}
	normalizeWithSmoothing(net.rootProb, opts.Laplace)

	net.cpt = make([][]float64, d)
	for _, i := range net.order[1:] {
		p := net.parent[i]
		si, sp := net.domains[i].size(), net.domains[p].size()
		cpt := make([]float64, sp*si)
		for r := range bins {
			cpt[bins[r][p]*si+bins[r][i]] += wts[r]
		}
		for pb := 0; pb < sp; pb++ {
			normalizeWithSmoothing(cpt[pb*si:(pb+1)*si], opts.Laplace)
		}
		net.cpt[i] = cpt
	}
	return net, nil
}

func normalizeWithSmoothing(p []float64, laplace float64) {
	var s float64
	for i := range p {
		p[i] += laplace
		s += p[i]
	}
	for i := range p {
		p[i] /= s
	}
}

func mutualInfo(bins [][]int, wts []float64, i, j, si, sj int, total float64) float64 {
	joint := make([]float64, si*sj)
	pi := make([]float64, si)
	pj := make([]float64, sj)
	for r, br := range bins {
		w := wts[r] / total
		joint[br[i]*sj+br[j]] += w
		pi[br[i]] += w
		pj[br[j]] += w
	}
	var m float64
	for a := 0; a < si; a++ {
		for b := 0; b < sj; b++ {
			p := joint[a*sj+b]
			if p > 0 && pi[a] > 0 && pj[b] > 0 {
				m += p * math.Log(p/(pi[a]*pj[b]))
			}
		}
	}
	return m
}

// Total returns the population weight the model was fit to.
func (n *Network) Total() float64 { return n.total }

// Sample draws k tuples from the network (ancestral sampling in topological
// order), producing bin-representative values.
func (n *Network) Sample(name string, k int, rng *rand.Rand) (*table.Table, error) {
	attrs := make([]schema.Attribute, len(n.schemaNames))
	for i := range attrs {
		attrs[i] = schema.Attribute{Name: n.schemaNames[i], Kind: n.kinds[i]}
	}
	sc, err := schema.New(attrs...)
	if err != nil {
		return nil, err
	}
	t := table.New(name, sc)
	for r := 0; r < k; r++ {
		binsRow := make([]int, len(n.domains))
		for _, i := range n.order {
			var p []float64
			if n.parent[i] < 0 {
				p = n.rootProb
			} else {
				si := n.domains[i].size()
				pb := binsRow[n.parent[i]]
				p = n.cpt[i][pb*si : (pb+1)*si]
			}
			binsRow[i] = sampleIndex(p, rng)
		}
		row := make([]value.Value, len(n.domains))
		for i, b := range binsRow {
			row[i] = n.domains[i].representative(b, n.kinds[i])
		}
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func sampleIndex(p []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var acc float64
	for i, pi := range p {
		acc += pi
		if u <= acc {
			return i
		}
	}
	return len(p) - 1
}

// EstimateProb estimates P(pred) by forward sampling k tuples; COUNT
// estimates are EstimateProb × Total.
func (n *Network) EstimateProb(pred func(row []value.Value) (bool, error), k int, rng *rand.Rand) (float64, error) {
	if k <= 0 {
		k = 10000
	}
	hits := 0
	for r := 0; r < k; r++ {
		binsRow := make([]int, len(n.domains))
		for _, i := range n.order {
			var p []float64
			if n.parent[i] < 0 {
				p = n.rootProb
			} else {
				si := n.domains[i].size()
				pb := binsRow[n.parent[i]]
				p = n.cpt[i][pb*si : (pb+1)*si]
			}
			binsRow[i] = sampleIndex(p, rng)
		}
		row := make([]value.Value, len(n.domains))
		for i, b := range binsRow {
			row[i] = n.domains[i].representative(b, n.kinds[i])
		}
		ok, err := pred(row)
		if err != nil {
			return 0, err
		}
		if ok {
			hits++
		}
	}
	return float64(hits) / float64(k), nil
}

// Parent returns the learned tree as parent indices (root has -1); exposed
// for tests and ablation reporting.
func (n *Network) Parent() []int { return append([]int(nil), n.parent...) }

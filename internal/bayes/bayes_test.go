package bayes

import (
	"math"
	"math/rand"
	"testing"

	"mosaic/internal/schema"
	"mosaic/internal/stats"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

var sc = schema.MustNew(
	schema.Attribute{Name: "c", Kind: value.KindText},
	schema.Attribute{Name: "x", Kind: value.KindFloat},
	schema.Attribute{Name: "y", Kind: value.KindFloat},
)

// correlatedData builds a sample where y ≈ 2x (strong dependence) and c is
// independent noise: the Chow–Liu tree must connect x—y.
func correlatedData(t *testing.T, n int, seed int64) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tbl := table.New("s", sc)
	labels := []string{"p", "q"}
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		y := 2*x + rng.NormFloat64()*0.3
		c := labels[rng.Intn(2)]
		if err := tbl.Append([]value.Value{value.Text(c), value.Float(x), value.Float(y)}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestLearnBuildsTree(t *testing.T) {
	tbl := correlatedData(t, 3000, 1)
	net, err := Learn(tbl, Options{Bins: 12})
	if err != nil {
		t.Fatal(err)
	}
	par := net.Parent()
	if len(par) != 3 {
		t.Fatalf("parent vector = %v", par)
	}
	roots := 0
	for _, p := range par {
		if p == -1 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("tree must have exactly one root: %v", par)
	}
	// x (index 1) and y (index 2) must be adjacent: one is the other's
	// parent, directly or through the root chain of length 1.
	adjacent := par[1] == 2 || par[2] == 1
	if !adjacent {
		t.Errorf("x and y not adjacent in tree: parents=%v (dependence missed)", par)
	}
	if net.Total() != 3000 {
		t.Errorf("Total = %g", net.Total())
	}
}

func TestLearnErrors(t *testing.T) {
	empty := table.New("s", sc)
	if _, err := Learn(empty, Options{}); err == nil {
		t.Error("empty sample should fail")
	}
}

func TestSamplePreservesMarginal(t *testing.T) {
	tbl := correlatedData(t, 4000, 2)
	net, err := Learn(tbl, Options{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	gen, err := net.Sample("g", 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Len() != 4000 {
		t.Fatalf("generated %d", gen.Len())
	}
	// Mean of x in generated data ≈ mean in training data (bin midpoints
	// introduce at most half a bin width of bias).
	xs, _ := tbl.FloatColumn("x")
	gs, _ := gen.FloatColumn("x")
	if d := math.Abs(stats.Mean(xs) - stats.Mean(gs)); d > 0.6 {
		t.Errorf("generated mean off by %g", d)
	}
}

func TestSamplePreservesDependence(t *testing.T) {
	tbl := correlatedData(t, 4000, 4)
	net, err := Learn(tbl, Options{Bins: 12})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	gen, err := net.Sample("g", 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	corr := func(tb *table.Table) float64 {
		xs, _ := tb.FloatColumn("x")
		ys, _ := tb.FloatColumn("y")
		mx, my := stats.Mean(xs), stats.Mean(ys)
		var cov, vx, vy float64
		for i := range xs {
			cov += (xs[i] - mx) * (ys[i] - my)
			vx += (xs[i] - mx) * (xs[i] - mx)
			vy += (ys[i] - my) * (ys[i] - my)
		}
		return cov / math.Sqrt(vx*vy)
	}
	if got := corr(gen); got < 0.8 {
		t.Errorf("generated corr(x,y) = %.3f; tree lost the dependence", got)
	}
}

func TestEstimateProb(t *testing.T) {
	tbl := correlatedData(t, 3000, 6)
	net, err := Learn(tbl, Options{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Truth: P(x > 5) ≈ 0.5 on Uniform(0,10).
	xi, _ := sc.Index("x")
	rng := rand.New(rand.NewSource(7))
	p, err := net.EstimateProb(func(row []value.Value) (bool, error) {
		return row[xi].AsFloat() > 5, nil
	}, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 0.06 {
		t.Errorf("P(x>5) = %.3f, want ≈0.5", p)
	}
}

func TestWeightedLearning(t *testing.T) {
	// Doubling a region's weights must shift the learned marginal.
	rng := rand.New(rand.NewSource(8))
	tbl := table.New("s", sc)
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * 10
		w := 1.0
		if x > 5 {
			w = 4 // upweight the upper half
		}
		if err := tbl.AppendWeighted([]value.Value{
			value.Text("p"), value.Float(x), value.Float(x),
		}, w); err != nil {
			t.Fatal(err)
		}
	}
	net, err := Learn(tbl, Options{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	xi, _ := sc.Index("x")
	p, err := net.EstimateProb(func(row []value.Value) (bool, error) {
		return row[xi].AsFloat() > 5, nil
	}, 20000, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	// Weighted mass above 5 is 4/(4+1) = 0.8.
	if math.Abs(p-0.8) > 0.06 {
		t.Errorf("weighted P(x>5) = %.3f, want ≈0.8", p)
	}
}

func TestCategoricalOnlyNetwork(t *testing.T) {
	cs := schema.MustNew(
		schema.Attribute{Name: "a", Kind: value.KindText},
		schema.Attribute{Name: "b", Kind: value.KindBool},
	)
	tbl := table.New("s", cs)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		a := "x"
		if rng.Float64() < 0.3 {
			a = "y"
		}
		// b depends on a.
		b := a == "x"
		if rng.Float64() < 0.1 {
			b = !b
		}
		if err := tbl.Append([]value.Value{value.Text(a), value.Bool(b)}); err != nil {
			t.Fatal(err)
		}
	}
	net, err := Learn(tbl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := net.Sample("g", 1000, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	// Generated (a=x, b=true) co-occurrence must dominate (a=x, b=false).
	var xTrue, xFalse float64
	gen.Scan(func(row []value.Value, _ float64) bool {
		if row[0].AsText() == "x" {
			if row[1].AsBool() {
				xTrue++
			} else {
				xFalse++
			}
		}
		return true
	})
	if xTrue <= xFalse {
		t.Errorf("dependence lost: x&true=%g x&false=%g", xTrue, xFalse)
	}
}

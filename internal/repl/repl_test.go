// Follower replication tests against a real primary serving process: full
// bootstrap, delta catch-up (failed statements included), truncation
// fallback, and divergence recovery — each ending in a byte-identical dump.
package repl_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"mosaic"
	"mosaic/internal/repl"
	"mosaic/internal/server"
)

func testOpts() *mosaic.Options { return &mosaic.Options{Seed: 3, OpenSamples: 3} }

// startPrimary boots a primary DB behind a real HTTP serving layer.
func startPrimary(t *testing.T, opts *mosaic.Options) (*mosaic.DB, string) {
	t.Helper()
	db := mosaic.Open(opts)
	srv, err := server.New(server.Config{DB: db, RequestTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return db, ts.URL
}

// newFollower creates a follower DB + Follower over the primary URL.
func newFollower(t *testing.T, primary string, opts *mosaic.Options) (*mosaic.DB, *repl.Follower) {
	t.Helper()
	db := mosaic.Open(opts)
	f, err := repl.NewFollower(repl.Config{
		Primary:      primary,
		DB:           db,
		PollInterval: 10 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return db, f
}

// dumpsEqual requires byte-identical dumps — the replication contract.
func dumpsEqual(t *testing.T, stage string, primary, follower *mosaic.DB) {
	t.Helper()
	want, err := primary.Dump()
	if err != nil {
		t.Fatal(err)
	}
	got, err := follower.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("%s: follower dump diverged from primary\nfollower:\n%s\nprimary:\n%s", stage, got, want)
	}
}

func TestFollowerBootstrapAndDeltaCatchUp(t *testing.T) {
	opts := testOpts()
	pdb, url := startPrimary(t, opts)
	if err := pdb.Exec("CREATE TABLE T (k TEXT, v INT); INSERT INTO T VALUES ('a', 1), ('b', 2)"); err != nil {
		t.Fatal(err)
	}
	fdb, f := newFollower(t, url, opts)
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	dumpsEqual(t, "bootstrap", pdb, fdb)
	if g, ok := f.ReplicatedGeneration(); !ok || g != pdb.Engine().Generation() {
		t.Fatalf("after bootstrap: replicated generation (%d, %v), primary at %d", g, ok, pdb.Engine().Generation())
	}

	// Primary moves on — including a FAILING statement, which the follower
	// must replay (it bumps the generation and may leave deterministic
	// partial effects) and agree on the outcome.
	if err := pdb.Exec("INSERT INTO T VALUES ('c', 3)"); err != nil {
		t.Fatal(err)
	}
	if err := pdb.Exec("INSERT INTO Missing VALUES (1)"); err == nil {
		t.Fatal("insert into a missing table succeeded on the primary")
	}
	if err := pdb.Exec("CREATE TABLE U (x INT); INSERT INTO U VALUES (7), (8)"); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	dumpsEqual(t, "delta catch-up", pdb, fdb)
	st := f.Stats()
	if st.Generation != pdb.Engine().Generation() {
		t.Errorf("follower at generation %d, primary at %d", st.Generation, pdb.Engine().Generation())
	}
	if st.FullSyncs != 1 || st.DeltaSyncs != 1 || st.AppliedStmts != 4 {
		t.Errorf("stats = full %d / delta %d / applied %d, want 1/1/4", st.FullSyncs, st.DeltaSyncs, st.AppliedStmts)
	}
	// Caught up: another round is a cheap no-op, not a re-sync.
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.DeltaSyncs != 1 {
		t.Errorf("caught-up round re-synced: delta_syncs = %d", st.DeltaSyncs)
	}
}

// TestFollowerTruncationFallsBackToFullBootstrap is the satellite
// regression: a follower that lags past the primary's bounded statement log
// gets 410, re-bootstraps from the full snapshot, and converges anyway.
func TestFollowerTruncationFallsBackToFullBootstrap(t *testing.T) {
	opts := testOpts()
	opts.StmtLogSize = 2
	pdb, url := startPrimary(t, opts)
	if err := pdb.Exec("CREATE TABLE T (v INT)"); err != nil {
		t.Fatal(err)
	}
	fopts := testOpts() // follower keeps the default log size; only engine answers must match
	fdb, f := newFollower(t, url, fopts)
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Far more mutations than the primary retains.
	for i := 0; i < 6; i++ {
		if err := pdb.Exec(fmt.Sprintf("INSERT INTO T VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	dumpsEqual(t, "post-truncation", pdb, fdb)
	st := f.Stats()
	if st.Truncations != 1 || st.FullSyncs != 2 {
		t.Errorf("stats = truncations %d / full %d, want 1 / 2 (bootstrap + fallback)", st.Truncations, st.FullSyncs)
	}
	if g, ok := f.ReplicatedGeneration(); !ok || g != pdb.Engine().Generation() {
		t.Errorf("replicated generation (%d, %v), primary at %d", g, ok, pdb.Engine().Generation())
	}
}

// TestFollowerGoAPIBarrierForcesFullSnapshot: a primary mutation with no
// SQL source (Go-API Ingest) poisons the delta range; the follower must
// take the full-snapshot path and still converge byte-identically.
func TestFollowerGoAPIBarrierForcesFullSnapshot(t *testing.T) {
	opts := testOpts()
	pdb, url := startPrimary(t, opts)
	if err := pdb.Exec("CREATE GLOBAL POPULATION P (g TEXT, v INT); CREATE SAMPLE S AS (SELECT * FROM P)"); err != nil {
		t.Fatal(err)
	}
	fdb, f := newFollower(t, url, opts)
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := pdb.Ingest("S", [][]any{{"a", 1}, {"b", 2}}); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	dumpsEqual(t, "post-barrier", pdb, fdb)
	if st := f.Stats(); st.Truncations != 1 || st.FullSyncs != 2 {
		t.Errorf("stats = truncations %d / full %d, want 1 / 2", st.Truncations, st.FullSyncs)
	}
}

// TestFollowerDivergenceRebootstraps: when replay disagrees with the
// primary's recorded outcome (here: the follower's state was corrupted out
// of band), the follower refuses to limp along and rebuilds from a full
// snapshot.
func TestFollowerDivergenceRebootstraps(t *testing.T) {
	opts := testOpts()
	pdb, url := startPrimary(t, opts)
	if err := pdb.Exec("CREATE TABLE T (v INT)"); err != nil {
		t.Fatal(err)
	}
	fdb, f := newFollower(t, url, opts)
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Corrupt the follower out of band: it now holds a table the primary
	// will create next, so replaying that CREATE fails locally while the
	// primary recorded success.
	if err := fdb.Exec("CREATE TABLE D (x INT)"); err != nil {
		t.Fatal(err)
	}
	if err := pdb.Exec("CREATE TABLE D (x INT); INSERT INTO D VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	dumpsEqual(t, "post-divergence", pdb, fdb)
	if st := f.Stats(); st.FullSyncs != 2 {
		t.Errorf("full_syncs = %d, want 2 (divergence forces a re-bootstrap)", st.FullSyncs)
	}
}

// TestFollowerPollLoopTracksPrimary: Start's background loop converges on
// primary mutations without explicit SyncOnce calls, and staleness flips
// health (not correctness) once syncs stop succeeding.
func TestFollowerPollLoopTracksPrimary(t *testing.T) {
	opts := testOpts()
	pdb, url := startPrimary(t, opts)
	if err := pdb.Exec("CREATE TABLE T (v INT)"); err != nil {
		t.Fatal(err)
	}
	db := mosaic.Open(opts)
	f, err := repl.NewFollower(repl.Config{
		Primary:      url,
		DB:           db,
		PollInterval: 5 * time.Millisecond,
		StalenessMax: 50 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := pdb.Exec("INSERT INTO T VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g, ok := f.ReplicatedGeneration(); ok && g == pdb.Engine().Generation() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("poll loop never caught up: follower at %d, primary at %d", f.Generation(), pdb.Engine().Generation())
		}
		time.Sleep(2 * time.Millisecond)
	}
	dumpsEqual(t, "poll catch-up", pdb, db)
	if f.Stats().Stale {
		t.Error("an actively syncing follower reports stale")
	}
	f.Close()
	// With the loop stopped, staleness must set in.
	time.Sleep(80 * time.Millisecond)
	if !f.Stats().Stale {
		t.Error("follower not stale after syncs stopped for > StalenessMax")
	}
}

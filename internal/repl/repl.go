// Package repl implements Mosaic's follower replication: a read replica
// that bootstraps from a primary's full snapshot script and then tails its
// per-generation statement log (GET /v1/snapshot, GET /v1/snapshot/delta).
//
// The replication unit is the Mosaic SQL statement, not a byte page: the
// engine is deterministic for a fixed Options and statement stream, so a
// follower that replays the primary's exact statement suffix — failed
// statements included, in order — lands on a bit-identical state at the
// same generation. Three invariants keep that sound:
//
//   - Every delta statement carries the primary's Failed flag, and the
//     follower verifies its own replay agrees ((err != nil) == Failed). A
//     disagreement means the states diverged (impossible for same-Options
//     processes, by the determinism contract); the follower discards its
//     state and re-bootstraps from a full snapshot rather than serve wrong
//     answers.
//   - Mutations that entered the primary through the Go API (Ingest,
//     SetMechanism, ...) have no SQL source; the primary logs them as
//     barriers that poison delta ranges, and the follower falls back to a
//     full snapshot — never skipping or guessing a statement.
//   - While a delta is mid-apply (or a bootstrap mid-swap), the follower's
//     state is between generations: ReplicatedGeneration reports not-ok and
//     the serving layer refuses generation-checked reads with 409, so the
//     coordinator can never gather an answer from a half-applied state.
//
// Staleness (no successful sync within StalenessMax) degrades health only;
// it never affects correctness — the coordinator routes by generation, and
// a lagging follower simply stops being a read candidate.
package repl

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mosaic"
	"mosaic/client"
	"mosaic/internal/wire"
)

// Config configures a Follower.
type Config struct {
	// Primary is the primary mosaic-serve base URL, e.g. "http://h1:7171".
	Primary string
	// DB is the local database the follower replicates into. It must be
	// opened with the SAME mosaic.Options as the primary (Seed, Shards,
	// SWG, ...): statement replay is only deterministic across identical
	// engines.
	DB *mosaic.DB
	// PollInterval is the delta poll period. Default 500ms.
	PollInterval time.Duration
	// StalenessMax marks the follower degraded (health only, never
	// correctness) when no sync has succeeded for this long. Default 10s.
	StalenessMax time.Duration
	// Retry configures retries of the idempotent snapshot fetches.
	// Zero-valued fields take client defaults.
	Retry client.RetryPolicy
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if c.Primary == "" {
		return c, errors.New("repl: Primary is required")
	}
	if c.DB == nil {
		return c, errors.New("repl: DB is required")
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.StalenessMax <= 0 {
		c.StalenessMax = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// Follower tails one primary. It implements server.FollowerState, so a
// serving layer wrapped around the same DB gates generation-checked reads
// on the replicated generation below.
type Follower struct {
	cfg Config
	cli *client.Client

	// gen is the primary generation the local state corresponds to. It is a
	// consistent claim only while applying and dirty are both false: the
	// apply path raises applying before the first statement touches the
	// engine and lowers it after the new generation is stored, and a sync
	// that aborts mid-suffix (deadline, divergence) raises dirty until a
	// full bootstrap lands a known-good state again.
	gen      atomic.Uint64
	applying atomic.Bool
	dirty    atomic.Bool

	lastSyncMs   atomic.Int64 // wall-clock ms of the last successful sync
	fullSyncs    atomic.Int64
	deltaSyncs   atomic.Int64
	appliedStmts atomic.Int64
	truncations  atomic.Int64
	syncErrors   atomic.Int64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewFollower creates a Follower over cfg. Call Bootstrap (or Start, which
// bootstraps first) before serving reads.
func NewFollower(cfg Config) (*Follower, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Follower{
		cfg:  cfg,
		cli:  client.New(cfg.Primary, client.WithRetry(cfg.Retry)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// ReplicatedGeneration implements server.FollowerState: the primary
// generation the local state corresponds to, and false while a delta or
// bootstrap is mid-apply (or an aborted apply awaits its re-bootstrap).
// The flags are re-checked after the generation load so the returned pair
// was consistent at some instant during the call.
func (f *Follower) ReplicatedGeneration() (uint64, bool) {
	if f.applying.Load() || f.dirty.Load() {
		return 0, false
	}
	g := f.gen.Load()
	if f.applying.Load() || f.dirty.Load() {
		return 0, false
	}
	return g, true
}

// Generation returns the replicated primary generation (0 before the first
// bootstrap).
func (f *Follower) Generation() uint64 { return f.gen.Load() }

// Stats implements server.FollowerState.
func (f *Follower) Stats() wire.FollowerStats {
	last := f.lastSyncMs.Load()
	stale := last == 0 || time.Since(time.UnixMilli(last)) > f.cfg.StalenessMax
	return wire.FollowerStats{
		Primary:        f.cfg.Primary,
		Generation:     f.gen.Load(),
		LastSyncUnixMs: last,
		Stale:          stale,
		FullSyncs:      f.fullSyncs.Load(),
		DeltaSyncs:     f.deltaSyncs.Load(),
		AppliedStmts:   f.appliedStmts.Load(),
		Truncations:    f.truncations.Load(),
		SyncErrors:     f.syncErrors.Load(),
	}
}

// Bootstrap discards the local state and rebuilds it from the primary's
// full snapshot script, then adopts the snapshot's generation. Restore
// replays into a fresh engine and swaps it in atomically, so reads racing
// the bootstrap finish against whichever engine they started on — and the
// serving layer's generation bracket discards any read that straddles the
// swap. On failure the previous state is untouched (dirty stays raised if
// it was: an aborted apply is only cleared by a bootstrap that lands).
func (f *Follower) Bootstrap(ctx context.Context) error {
	snap, err := f.cli.SnapshotContext(ctx)
	if err != nil {
		f.syncErrors.Add(1)
		return fmt.Errorf("repl: snapshot from %s: %w", f.cfg.Primary, err)
	}
	f.applying.Store(true)
	defer f.applying.Store(false)
	if err := f.cfg.DB.Restore(snap.Script); err != nil {
		f.syncErrors.Add(1)
		return fmt.Errorf("repl: bootstrap replay: %w", err)
	}
	f.gen.Store(snap.Generation)
	f.dirty.Store(false)
	f.fullSyncs.Add(1)
	f.lastSyncMs.Store(time.Now().UnixMilli())
	f.cfg.Logf("repl: bootstrapped from %s at generation %d (%d bytes)", f.cfg.Primary, snap.Generation, len(snap.Script))
	return nil
}

// SyncOnce advances the follower by one round: fetch the statement suffix
// since the replicated generation and replay it, falling back to a full
// Bootstrap when the primary's log no longer covers the range (410 Gone:
// truncated, barriered, or a primary that restarted to an older counter).
func (f *Follower) SyncOnce(ctx context.Context) error {
	if f.dirty.Load() {
		// A previous apply aborted mid-suffix; the state between generations
		// cannot take a delta. Only a full bootstrap recovers.
		return f.Bootstrap(ctx)
	}
	from := f.gen.Load()
	delta, err := f.cli.SnapshotDeltaContext(ctx, from)
	if err != nil {
		var re *client.RemoteError
		if errors.As(err, &re) && re.StatusCode == http.StatusGone {
			f.truncations.Add(1)
			f.cfg.Logf("repl: delta from generation %d gone (%s); re-bootstrapping", from, re.Message)
			return f.Bootstrap(ctx)
		}
		f.syncErrors.Add(1)
		return fmt.Errorf("repl: delta from %s: %w", f.cfg.Primary, err)
	}
	if delta.Generation == from {
		// Caught up; a successful no-op round still refreshes staleness.
		f.lastSyncMs.Store(time.Now().UnixMilli())
		return nil
	}
	f.applying.Store(true)
	defer f.applying.Store(false)
	for i, st := range delta.Stmts {
		err := f.cfg.DB.ExecContext(ctx, st.Src)
		if ctx.Err() != nil {
			// The round's deadline hit mid-suffix: the local state sits
			// between generations, and re-fetching from `from` would
			// double-apply the prefix. Mark dirty and re-bootstrap on a
			// fresh (but still bounded) context.
			f.dirty.Store(true)
			f.syncErrors.Add(1)
			f.cfg.Logf("repl: delta apply interrupted at statement %d/%d; re-bootstrapping", i+1, len(delta.Stmts))
			bctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), f.syncTimeout())
			defer cancel()
			return f.Bootstrap(bctx)
		}
		if (err != nil) != st.Failed {
			// Deterministic replay disagreed with the primary's outcome: the
			// states diverged. Never keep serving from a diverged copy.
			f.dirty.Store(true)
			f.syncErrors.Add(1)
			f.cfg.Logf("repl: divergence at generation %d statement %q: primary failed=%v, local err=%v; re-bootstrapping", from+uint64(i)+1, st.Src, st.Failed, err)
			return f.Bootstrap(ctx)
		}
		f.appliedStmts.Add(1)
	}
	f.gen.Store(delta.Generation)
	f.deltaSyncs.Add(1)
	f.lastSyncMs.Store(time.Now().UnixMilli())
	return nil
}

// Start bootstraps and then polls the primary every PollInterval until
// Close. A failed initial bootstrap fails Start — a follower must never
// serve before holding a real state.
func (f *Follower) Start(ctx context.Context) error {
	if err := f.Bootstrap(ctx); err != nil {
		return err
	}
	f.started.Store(true)
	go f.loop()
	return nil
}

func (f *Follower) loop() {
	defer close(f.done)
	t := time.NewTicker(f.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), f.syncTimeout())
			if err := f.SyncOnce(ctx); err != nil {
				f.cfg.Logf("repl: sync: %v", err)
			}
			cancel()
		}
	}
}

// syncTimeout bounds one sync round: generous relative to the poll cadence
// (a full bootstrap replays the whole snapshot) but never unbounded.
func (f *Follower) syncTimeout() time.Duration {
	t := 20 * f.cfg.PollInterval
	if t < 30*time.Second {
		t = 30 * time.Second
	}
	return t
}

// Close stops the poll loop and waits for the in-flight round, if any. It
// is idempotent and safe to call even if Start was never called or failed.
func (f *Follower) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	if f.started.Load() {
		<-f.done
	}
}

// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec 5.3) plus the DESIGN.md ablations. Each benchmark prints its result
// table once (so `go test -bench=. -benchmem` doubles as the reproduction
// run) and reports ns/op for the full experiment at the benchmark scale.
//
// Benchmark scales are reduced from the paper's (50k-row populations instead
// of 426k, fewer training epochs); the mosaic-bench CLI exposes flags for
// full-scale runs. See EXPERIMENTS.md for recorded outputs.
package mosaic_test

import (
	"sync"
	"testing"

	"mosaic/internal/bench"
	"mosaic/internal/swg"
)

// benchSpiral is the spiral configuration shared by Figure 5/6 benchmarks.
func benchSpiral() bench.SpiralConfig {
	return bench.SpiralConfig{
		PopN: 20000, SampleN: 4000, Bias: 8, Bins: 32, Seed: 11,
		SWG: swg.Config{
			Hidden: []int{64, 64, 64}, Latent: 2, Lambda: 0.04,
			BatchSize: 400, Projections: 32, Epochs: 15, StepsPerEpoch: 8,
			LR: 0.002, Seed: 11,
		},
	}
}

func benchFlights() bench.FlightsConfig {
	return bench.FlightsConfig{
		PopN: 20000, SampleFrac: 0.05, BiasFrac: 0.95, OpenSamples: 5, Seed: 11,
		SWG: swg.Config{
			Hidden: []int{50, 50, 50}, Latent: 12, Lambda: 1e-6,
			BatchSize: 250, Projections: 24, Epochs: 10, StepsPerEpoch: 4,
			LR: 0.002, Seed: 11,
		},
	}
}

// Shared setups so the N figures amortize one training run each.
var (
	spiralOnce  sync.Once
	spiralSetup *bench.SpiralSetup
	spiralErr   error

	flightsOnce  sync.Once
	flightsSetup *bench.FlightsSetup
	flightsErr   error
)

func getSpiral(b *testing.B) *bench.SpiralSetup {
	b.Helper()
	spiralOnce.Do(func() {
		spiralSetup, spiralErr = bench.BuildSpiral(benchSpiral())
	})
	if spiralErr != nil {
		b.Fatal(spiralErr)
	}
	return spiralSetup
}

func getFlights(b *testing.B) *bench.FlightsSetup {
	b.Helper()
	flightsOnce.Do(func() {
		flightsSetup, flightsErr = bench.BuildFlights(benchFlights())
	})
	if flightsErr != nil {
		b.Fatal(flightsErr)
	}
	return flightsSetup
}

// BenchmarkFigure5 regenerates Fig 5: biased spiral sample vs M-SWG sample
// against the population (marginal W1 + shape preservation).
func BenchmarkFigure5(b *testing.B) {
	setup := getSpiral(b)
	b.ResetTimer()
	var printed bool
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure5From(setup)
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.Log("\n" + res.String())
			printed = true
		}
	}
}

// BenchmarkFigure6 regenerates Fig 6: box plots of range-query percent
// difference, Unif vs M-SWG, across box width coverages.
func BenchmarkFigure6(b *testing.B) {
	setup := getSpiral(b)
	cfg := bench.Fig6Config{Spiral: setup.Cfg, Queries: 100, Replicates: 10}
	b.ResetTimer()
	var printed bool
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure6From(setup, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.Log("\n" + res.String())
			printed = true
		}
	}
}

// BenchmarkFigure7Left regenerates Fig 7's left panel: continuous queries
// 1–4, Unif vs IPF vs M-SWG.
func BenchmarkFigure7Left(b *testing.B) {
	setup := getFlights(b)
	b.ResetTimer()
	var printed bool
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure7From(setup, bench.FlightQueries[:4])
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.Log("\n" + res.String())
			printed = true
		}
	}
}

// BenchmarkFigure7Right regenerates Fig 7's right panel: categorical GROUP
// BY queries 5–8.
func BenchmarkFigure7Right(b *testing.B) {
	setup := getFlights(b)
	b.ResetTimer()
	var printed bool
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure7From(setup, bench.FlightQueries[4:])
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.Log("\n" + res.String())
			printed = true
		}
	}
}

// BenchmarkVisibilityTable regenerates the Sec 3.3 FN/FP trade-off table.
func BenchmarkVisibilityTable(b *testing.B) {
	var printed bool
	for i := 0; i < b.N; i++ {
		res, err := bench.RunVisibility(bench.VisibilityConfig{Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.Log("\n" + res.String())
			printed = true
		}
	}
}

// BenchmarkRandomQuerySweep regenerates the 200-random-query model-selection
// sweep (Sec 5.3's "all of our M-SWG models achieve a lower query error than
// Unif" claim).
func BenchmarkRandomQuerySweep(b *testing.B) {
	setup := getFlights(b)
	b.ResetTimer()
	var printed bool
	for i := 0; i < b.N; i++ {
		res, err := bench.SweepFrom(setup, 200)
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.Log("\n" + res.String())
			printed = true
		}
	}
}

// BenchmarkAblationLambda sweeps the λ trade-off (A1).
func BenchmarkAblationLambda(b *testing.B) {
	cfg := benchSpiral()
	cfg.SWG.Epochs = 8
	var printed bool
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationLambda(cfg, []float64{0.004, 0.04, 0.4})
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.Log("\n" + res.String())
			printed = true
		}
	}
}

// BenchmarkAblationProjections sweeps the sliced-W1 projection count (A2).
func BenchmarkAblationProjections(b *testing.B) {
	cfg := benchSpiral()
	cfg.SWG.Epochs = 8
	var printed bool
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationProjections(cfg, []int{4, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.Log("\n" + res.String())
			printed = true
		}
	}
}

// BenchmarkAblationMechanism compares known-mechanism HT weighting against
// IPF (A3, the two SEMI-OPEN subcases of Sec 4.1).
func BenchmarkAblationMechanism(b *testing.B) {
	var printed bool
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationMechanism(bench.FlightsConfig{PopN: 30000, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.Log("\n" + res.String())
			printed = true
		}
	}
}

// BenchmarkAblationMarginalScope compares Fig 3's query-population vs
// global-population marginal paths (A4).
func BenchmarkAblationMarginalScope(b *testing.B) {
	var printed bool
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationMarginalScope(benchFlights())
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.Log("\n" + res.String())
			printed = true
		}
	}
}

// BenchmarkAblationBayesVsSWG compares the explicit Bayesian-network model
// against the implicit M-SWG on COUNT queries (A5, Sec 4.2's discussion).
func BenchmarkAblationBayesVsSWG(b *testing.B) {
	var printed bool
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationBayesVsSWG(benchFlights())
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.Log("\n" + res.String())
			printed = true
		}
	}
}

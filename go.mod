module mosaic

go 1.22

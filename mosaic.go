// Package mosaic is a sample-based database system for open world query
// processing, reproducing the system of Orr et al., "Mosaic: A Sample-Based
// Database System for Open World Query Processing" (CIDR 2020).
//
// Mosaic treats samples as first-class citizens: users declare populations
// (sets of tuples that exist in the world but not in the database), ingest
// biased samples of them, attach ground-truth marginal metadata, and then
// query the populations directly. A visibility keyword after SELECT chooses
// how open the answer may be:
//
//   - CLOSED   — answer from the samples as stored (closed world).
//   - SEMI-OPEN — reweight the sample: inverse inclusion probability when
//     the sampling mechanism is known, Iterative Proportional Fitting
//     against the population marginals otherwise.
//   - OPEN     — additionally generate missing tuples with a
//     marginal-constrained sliced Wasserstein generator (M-SWG).
//
// # Concurrency and determinism
//
// A DB is safe for concurrent use: queries (Query, Scalar, EXPLAIN) run
// under a shared read lock, so any number of them proceed in parallel, while
// DDL/DML (Exec, Ingest, SetMechanism, AddMarginal) serializes behind a
// write lock and invalidates the derived caches (trained M-SWG models, IPF
// fits). Options.Workers additionally parallelizes inside one query: the
// columnar kernels partition every scan into fixed-size morsels processed by
// a pool of Workers goroutines, OPEN replicate generation fans across
// Workers goroutines, and M-SWG training uses Workers loss workers.
//
// Determinism guarantee: for a fixed Seed and statement stream, answers are
// bit-identical regardless of Workers. Morsel boundaries are a pure function
// of the row count, and per-morsel state (selection vectors, group tables,
// sorted runs) merges in morsel order — so the parallel scan reconstructs
// exactly the serial scan's result. Every OPEN replicate draws from an RNG
// stream derived only from (Seed, replicate index) — never from which
// goroutine runs it or in what order — and parallel loss reductions are
// statically partitioned. Workers trades only wall-clock time, never answer
// stability.
//
// Options.Shards adds in-process scatter-gather: CLOSED/SEMI-OPEN aggregate
// queries scatter over Shards contiguous range partitions and gather their
// mergeable partial states in shard order. Unlike Workers, Shards is part of
// the answer contract: the shard merge reassociates float addition, so
// answers are bit-identical across runs and Workers only for a fixed Shards
// value, and Shards 0/1 is byte-identical to the unsharded engine. OPEN
// queries always scan the unified view.
//
// # Quickstart
//
//	db := mosaic.Open(nil)
//	err := db.Exec(`
//	    CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT, age INT);
//	    CREATE SAMPLE YahooMigrants AS (SELECT * FROM EuropeMigrants WHERE email = 'Yahoo');
//	`)
//	// ... ingest rows, CREATE METADATA, then:
//	res, err := db.Query(`SELECT OPEN country, email, COUNT(*) FROM EuropeMigrants GROUP BY country, email`)
package mosaic

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"mosaic/internal/core"
	"mosaic/internal/exec"
	"mosaic/internal/ipf"
	"mosaic/internal/marginal"
	"mosaic/internal/mechanism"
	"mosaic/internal/sql"
	"mosaic/internal/swg"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// Result is a materialized query answer: column names plus rows of Values.
type Result = exec.Result

// Value is one typed scalar in a result row.
type Value = value.Value

// Marginal is a 1- or 2-dimensional population histogram (metadata).
type Marginal = marginal.Marginal

// SWGConfig tunes the OPEN-query generator (see the paper's Sec 5).
type SWGConfig = swg.Config

// IPFOptions tunes SEMI-OPEN reweighting.
type IPFOptions = ipf.Options

// Mechanism is a sampling mechanism Pr_S(t) usable for known-mechanism
// reweighting.
type Mechanism = mechanism.Mechanism

// Uniform is the UNIFORM PERCENT mechanism.
type Uniform = mechanism.Uniform

// Options configures a DB.
type Options struct {
	// Seed drives all randomness (default 1): two DBs with equal seeds and
	// equal statement streams give identical answers.
	Seed int64
	// OpenSamples is the number of generated samples averaged per OPEN
	// query (paper default 10).
	OpenSamples int
	// GeneratedRows overrides the size of each generated sample (default:
	// the source sample's size).
	GeneratedRows int
	// UnionSamples answers population queries from the union of all
	// schema-covering samples instead of one optimal sample (the paper's
	// Sec 7 "Multiple Samples" extension).
	UnionSamples bool
	// Workers bounds intra-query parallelism: columnar kernels scan
	// morsel-parallel across up to Workers goroutines, OPEN queries generate
	// their replicates across them, and M-SWG training uses Workers loss
	// workers unless SWG.Workers overrides it. Answers are bit-identical for
	// any Workers value (see the package comment's determinism guarantee).
	// 0 (the default) means all cores — runtime.GOMAXPROCS(0); use 1 for the
	// true serial path.
	Workers int
	// Shards range-partitions every table scan into this many contiguous
	// slices and answers CLOSED/SEMI-OPEN aggregate queries by in-process
	// scatter-gather: per-shard partial aggregate states merged in shard
	// order. 0 or 1 (the default) disables sharding and is byte-identical to
	// the unsharded engine. For a fixed Shards value answers are
	// bit-identical across runs and Workers values; float aggregates may
	// differ in low-order bits between different Shards values (the shard
	// merge reassociates IEEE 754 addition), so Shards is part of the answer
	// contract. OPEN queries always execute against the unified view.
	Shards int
	// SWG is the base generator configuration for OPEN queries.
	SWG SWGConfig
	// IPF tunes SEMI-OPEN fitting.
	IPF IPFOptions
	// RowExec forces the legacy row-at-a-time executor, bypassing the
	// vectorized columnar path. Answers are byte-identical either way; the
	// switch exists for differential testing and benchmarking.
	RowExec bool
	// StmtLogSize bounds the per-generation statement log that backs
	// follower replication deltas (GET /v1/snapshot/delta): the newest
	// StmtLogSize mutations are retained. 0 means the default (1024);
	// negative disables retention, forcing followers onto full snapshots.
	StmtLogSize int
}

// DB is a Mosaic database instance. It is safe for concurrent use: queries
// share a read lock and run in parallel, DDL/DML takes the write lock and
// may interleave freely with queries from other goroutines (each statement
// is atomic; multi-statement scripts are not). Restore swaps in a freshly
// replayed engine atomically: in-flight queries finish against the state
// they started on.
type DB struct {
	opts   core.Options
	engine atomic.Pointer[core.Engine]
}

// Open creates an empty in-memory Mosaic database. A nil opts uses defaults.
func Open(opts *Options) *DB {
	var o Options
	if opts != nil {
		o = *opts
	}
	db := &DB{opts: core.Options{
		Seed:          o.Seed,
		OpenSamples:   o.OpenSamples,
		GeneratedRows: o.GeneratedRows,
		UnionSamples:  o.UnionSamples,
		Workers:       o.Workers,
		Shards:        o.Shards,
		SWG:           o.SWG,
		IPF:           o.IPF,
		RowExec:       o.RowExec,
		StmtLogSize:   o.StmtLogSize,
	}}
	db.engine.Store(core.NewEngine(db.opts))
	return db
}

// eng returns the current engine. Queries and mutations that race a Restore
// use whichever engine was current when they started.
func (db *DB) eng() *core.Engine { return db.engine.Load() }

// Exec runs one or more semicolon-separated DDL/DML statements.
func (db *DB) Exec(script string) error {
	return db.ExecContext(context.Background(), script)
}

// ExecContext is Exec with a cancellation context: the script stops between
// statements once ctx expires (each statement is atomic; completed
// statements stay executed), and SELECTs inside the script honor ctx at
// every engine checkpoint.
func (db *DB) ExecContext(ctx context.Context, script string) error {
	_, err := db.eng().ExecScriptContext(ctx, script)
	return err
}

// Query runs a single SELECT and returns its result. Optional args bind `?`
// placeholders in the query, in order; a bound query answers byte-identically
// to the same query with the literals inlined.
func (db *DB) Query(query string, args ...any) (*Result, error) {
	return db.QueryContext(context.Background(), query, args...)
}

// QueryContext is Query with a cancellation context. A cancelled query
// returns ctx.Err() promptly — M-SWG training, OPEN replicate generation,
// IPF fitting, and executor scans all checkpoint the context — and leaves
// the database fully consistent: re-running the query returns the
// byte-identical uncancelled answer.
func (db *DB) QueryContext(ctx context.Context, query string, args ...any) (*Result, error) {
	sel, err := sql.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	bound, err := bindArgs(sel, args)
	if err != nil {
		return nil, err
	}
	return db.eng().QueryContext(ctx, bound)
}

// Run executes a script and returns the result of every statement (nil for
// DDL/DML), enabling mixed scripts like the paper's Sec 2 example.
func (db *DB) Run(script string) ([]*Result, error) {
	return db.RunContext(context.Background(), script)
}

// RunContext is Run with a cancellation context (see ExecContext for the
// mid-script semantics).
func (db *DB) RunContext(ctx context.Context, script string) ([]*Result, error) {
	return db.eng().ExecScriptContext(ctx, script)
}

// bindArgs coerces Go-native args to typed values and substitutes them for
// the statement's `?` placeholders.
func bindArgs(sel *sql.Select, args []any) (*sql.Select, error) {
	if len(args) == 0 && sel.NumParams == 0 {
		return sel, nil
	}
	vals := make([]value.Value, len(args))
	for i, a := range args {
		v, err := value.FromRaw(a)
		if err != nil {
			return nil, fmt.Errorf("mosaic: parameter %d: %v", i+1, err)
		}
		vals[i] = v
	}
	return sql.BindParams(sel, vals)
}

// Ingest appends Go-native rows ([]any per row, matching the relation
// schema) into a table or sample.
func (db *DB) Ingest(relation string, rows [][]any) error {
	return db.eng().Ingest(relation, rows)
}

// SetMechanism installs a sampling mechanism on a sample, enabling
// known-mechanism SEMI-OPEN reweighting for designs SQL cannot express.
func (db *DB) SetMechanism(sample string, m Mechanism) error {
	return db.eng().SetSampleMechanism(sample, m)
}

// AddMarginal attaches a programmatically built marginal to a population.
func (db *DB) AddMarginal(population string, m *Marginal) error {
	return db.eng().AddMarginal(population, m)
}

// Scalar is a convenience for single-row single-column answers (e.g. global
// aggregates): it runs the query and returns the lone cell as float64.
// Optional args bind `?` placeholders.
func (db *DB) Scalar(query string, args ...any) (float64, error) {
	return db.ScalarContext(context.Background(), query, args...)
}

// ScalarContext is Scalar with a cancellation context.
func (db *DB) ScalarContext(ctx context.Context, query string, args ...any) (float64, error) {
	res, err := db.QueryContext(ctx, query, args...)
	if err != nil {
		return 0, err
	}
	return scalarCell(res)
}

// scalarCell extracts the lone cell of a 1×1 result as float64.
func scalarCell(res *Result) (float64, error) {
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return 0, fmt.Errorf("mosaic: query returned %d rows × %d columns, want 1×1", len(res.Rows), len(res.Columns))
	}
	return res.Rows[0][0].Float64()
}

// Engine exposes the underlying engine for advanced use (experiment
// harnesses, tests). Most callers should not need it. The returned engine is
// a point-in-time handle: a later Restore swaps the DB to a new engine.
func (db *DB) Engine() *core.Engine { return db.eng() }

// Dump serializes the database as a Mosaic SQL script; executing it against
// an empty DB recreates the relations, rows, metadata, and sample weights.
// Non-UNIFORM mechanisms are noted as comments (they are Go-API objects).
func (db *DB) Dump() (string, error) {
	return db.eng().DumpScript()
}

// Snapshot serializes the current database state as a self-contained Mosaic
// SQL script suitable for Restore. It is the persistence format of
// mosaic-serve: human-readable, append-only friendly, and replayable against
// any engine with the same Options.
func (db *DB) Snapshot() (string, error) {
	return db.eng().DumpScript()
}

// Restore replaces the database's entire state by replaying a Snapshot
// script against a fresh engine with the DB's original Options (so
// restored answers are bit-identical to the snapshotted instance's for the
// same statement stream). On replay error the current state is untouched.
// Concurrent queries started before Restore finish against the old state.
func (db *DB) Restore(script string) error {
	fresh := core.NewEngine(db.opts)
	if _, err := fresh.ExecScript(script); err != nil {
		return fmt.Errorf("mosaic: restore: %w", err)
	}
	db.engine.Store(fresh)
	return nil
}

// SaveSnapshot atomically writes a Snapshot to path: the script lands in a
// temporary file in the same directory and is renamed into place, so a crash
// mid-write never corrupts the previous snapshot.
func (db *DB) SaveSnapshot(path string) error {
	script, err := db.Snapshot()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("mosaic: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.WriteString(script); err != nil {
		tmp.Close()
		return fmt.Errorf("mosaic: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("mosaic: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("mosaic: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("mosaic: snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot restores the database from a snapshot file written by
// SaveSnapshot (or any Mosaic SQL script).
func (db *DB) LoadSnapshot(path string) error {
	script, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("mosaic: snapshot: %w", err)
	}
	return db.Restore(string(script))
}

// NewMarginal builds a 1- or 2-attribute marginal from (values..., count)
// rows of Go-native scalars, for AddMarginal.
func NewMarginal(name string, attrs []string, cells [][]any) (*Marginal, error) {
	m, err := marginal.New(name, attrs)
	if err != nil {
		return nil, err
	}
	for ri, c := range cells {
		if len(c) != len(attrs)+1 {
			return nil, fmt.Errorf("mosaic: marginal cell %d has %d entries, want %d values + count", ri, len(c), len(attrs))
		}
		vals := make([]Value, len(attrs))
		for i := 0; i < len(attrs); i++ {
			v, err := value.FromRaw(c[i])
			if err != nil {
				return nil, fmt.Errorf("mosaic: marginal cell %d: %v", ri, err)
			}
			vals[i] = v
		}
		cnt, err := value.FromRaw(c[len(attrs)])
		if err != nil {
			return nil, fmt.Errorf("mosaic: marginal cell %d: %v", ri, err)
		}
		f, err := cnt.Float64()
		if err != nil {
			return nil, fmt.Errorf("mosaic: marginal cell %d count: %v", ri, err)
		}
		if err := m.Add(vals, f); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Table gives read access to a stored relation's backing table (samples and
// auxiliary tables).
func (db *DB) Table(name string) (*table.Table, error) {
	if t, ok := db.eng().Catalog().Table(name); ok {
		return t, nil
	}
	if s, ok := db.eng().Catalog().Sample(name); ok {
		return s.Table, nil
	}
	return nil, fmt.Errorf("mosaic: no table or sample %q", name)
}

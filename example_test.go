package mosaic_test

import (
	"fmt"
	"log"

	"mosaic"
)

// Example demonstrates the core open-world workflow: declare a population,
// attach census-style marginals, ingest a biased sample, and query at
// different visibilities. The sample holds only Yahoo users, yet SEMI-OPEN
// reweighting recovers the full population count from the metadata.
func Example() {
	db := mosaic.Open(nil)

	err := db.Exec(`
		CREATE TABLE Census (country TEXT, n INT);
		CREATE GLOBAL POPULATION People (country TEXT, email TEXT);
		CREATE SAMPLE YahooUsers AS (SELECT * FROM People WHERE email = 'Yahoo');
	`)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Ingest("Census", [][]any{{"UK", 600}, {"FR", 400}}); err != nil {
		log.Fatal(err)
	}
	if err := db.Exec(`CREATE METADATA People_M1 AS (SELECT country, n FROM Census)`); err != nil {
		log.Fatal(err)
	}
	// The biased sample: twice as many UK Yahoo users as French ones.
	if err := db.Ingest("YahooUsers", [][]any{
		{"UK", "Yahoo"}, {"UK", "Yahoo"}, {"UK", "Yahoo"}, {"UK", "Yahoo"},
		{"FR", "Yahoo"}, {"FR", "Yahoo"},
	}); err != nil {
		log.Fatal(err)
	}

	closed, err := db.Scalar(`SELECT CLOSED COUNT(*) FROM People`)
	if err != nil {
		log.Fatal(err)
	}
	semiOpen, err := db.Scalar(`SELECT SEMI-OPEN COUNT(*) FROM People`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CLOSED COUNT(*)    = %.0f (just the sample)\n", closed)
	fmt.Printf("SEMI-OPEN COUNT(*) = %.0f (IPF against the census)\n", semiOpen)

	res, err := db.Query(`SELECT SEMI-OPEN country, COUNT(*) FROM People GROUP BY country ORDER BY country`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		c, _ := row[1].Float64()
		fmt.Printf("%s: %.0f\n", row[0].AsText(), c)
	}
	// Output:
	// CLOSED COUNT(*)    = 6 (just the sample)
	// SEMI-OPEN COUNT(*) = 1000 (IPF against the census)
	// FR: 400
	// UK: 600
}

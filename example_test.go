package mosaic_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"mosaic"
)

// Example demonstrates the core open-world workflow: declare a population,
// attach census-style marginals, ingest a biased sample, and query at
// different visibilities. The sample holds only Yahoo users, yet SEMI-OPEN
// reweighting recovers the full population count from the metadata.
func Example() {
	db := mosaic.Open(nil)

	err := db.Exec(`
		CREATE TABLE Census (country TEXT, n INT);
		CREATE GLOBAL POPULATION People (country TEXT, email TEXT);
		CREATE SAMPLE YahooUsers AS (SELECT * FROM People WHERE email = 'Yahoo');
	`)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Ingest("Census", [][]any{{"UK", 600}, {"FR", 400}}); err != nil {
		log.Fatal(err)
	}
	if err := db.Exec(`CREATE METADATA People_M1 AS (SELECT country, n FROM Census)`); err != nil {
		log.Fatal(err)
	}
	// The biased sample: twice as many UK Yahoo users as French ones.
	if err := db.Ingest("YahooUsers", [][]any{
		{"UK", "Yahoo"}, {"UK", "Yahoo"}, {"UK", "Yahoo"}, {"UK", "Yahoo"},
		{"FR", "Yahoo"}, {"FR", "Yahoo"},
	}); err != nil {
		log.Fatal(err)
	}

	closed, err := db.Scalar(`SELECT CLOSED COUNT(*) FROM People`)
	if err != nil {
		log.Fatal(err)
	}
	semiOpen, err := db.Scalar(`SELECT SEMI-OPEN COUNT(*) FROM People`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CLOSED COUNT(*)    = %.0f (just the sample)\n", closed)
	fmt.Printf("SEMI-OPEN COUNT(*) = %.0f (IPF against the census)\n", semiOpen)

	res, err := db.Query(`SELECT SEMI-OPEN country, COUNT(*) FROM People GROUP BY country ORDER BY country`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		c, _ := row[1].Float64()
		fmt.Printf("%s: %.0f\n", row[0].AsText(), c)
	}
	// Output:
	// CLOSED COUNT(*)    = 6 (just the sample)
	// SEMI-OPEN COUNT(*) = 1000 (IPF against the census)
	// FR: 400
	// UK: 600
}

// ExampleDB_Prepare shows prepared, parameterized statements: the query is
// parsed and planned once, `?` placeholders bind per execution, and every
// binding answers byte-identically to the same query with the literal
// spelled inline.
func ExampleDB_Prepare() {
	db := mosaic.Open(nil)
	if err := db.Exec(`CREATE TABLE Orders (city TEXT, total INT)`); err != nil {
		log.Fatal(err)
	}
	err := db.Ingest("Orders", [][]any{
		{"Oslo", 120}, {"Oslo", 80}, {"Lyon", 40}, {"Lyon", 200}, {"Turin", 90},
	})
	if err != nil {
		log.Fatal(err)
	}

	stmt, err := db.Prepare(`SELECT COUNT(*) FROM Orders WHERE city = ? AND total > ?`)
	if err != nil {
		log.Fatal(err)
	}
	for _, probe := range []struct {
		city string
		min  int
	}{{"Oslo", 100}, {"Lyon", 30}} {
		n, err := stmt.Scalar(probe.city, probe.min)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s over %d: %.0f\n", probe.city, probe.min, n)
	}
	// Output:
	// Oslo over 100: 1
	// Lyon over 30: 2
}

// ExampleDB_QueryContext shows cancellation: a context deadline bounds even
// expensive OPEN queries (model training, replicate generation), returning
// ctx.Err() promptly while leaving the database consistent — the same query
// re-run without the deadline gives the normal, deterministic answer.
func ExampleDB_QueryContext() {
	db := mosaic.Open(nil)
	if err := db.Exec(`CREATE TABLE Events (kind TEXT, n INT)`); err != nil {
		log.Fatal(err)
	}
	if err := db.Ingest("Events", [][]any{{"click", 3}, {"view", 9}}); err != nil {
		log.Fatal(err)
	}

	// An already-expired context cancels before any work happens.
	expired, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	if _, err := db.QueryContext(expired, `SELECT COUNT(*) FROM Events`); err != nil {
		fmt.Println("cancelled:", err == context.DeadlineExceeded)
	}

	// The same query without the deadline answers normally.
	n, err := db.ScalarContext(context.Background(), `SELECT COUNT(*) FROM Events WHERE n > ?`, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events over 5: %.0f\n", n)
	// Output:
	// cancelled: true
	// events over 5: 1
}

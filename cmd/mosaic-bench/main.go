// Command mosaic-bench regenerates the paper's evaluation tables and
// figures at configurable scale.
//
// Usage:
//
//	mosaic-bench -exp fig5|fig6|fig7|visibility|sweep|lambda|projections|
//	             mechanism|scope|bayes|tables|all
//	             [-pop N] [-sample N] [-epochs N] [-projections N] [-seed N]
//
// The default scales are laptop-sized; raise -pop/-epochs/-projections to
// approach the paper's settings (426k rows, 80 epochs, p=1000).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mosaic/internal/bench"
	"mosaic/internal/dataset"
	"mosaic/internal/swg"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig5, fig6, fig7, visibility, sweep, lambda, projections, mechanism, scope, bayes, tables, all)")
	popN := flag.Int("pop", 50000, "population rows")
	sampleN := flag.Int("sample", 10000, "spiral sample rows")
	epochs := flag.Int("epochs", 25, "M-SWG training epochs")
	projections := flag.Int("projections", 64, "sliced-W1 projections per ≥2-D marginal")
	workers := flag.Int("workers", 4, "parallel loss workers for M-SWG training")
	openSamples := flag.Int("open-samples", 10, "generated samples averaged per OPEN query")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	spiral := bench.SpiralConfig{
		PopN: *popN, SampleN: *sampleN, Seed: *seed,
		SWG: swg.Config{
			Hidden: []int{100, 100, 100}, Latent: 2, Lambda: 0.04,
			BatchSize: 500, Projections: *projections, Epochs: *epochs,
			Workers: *workers, Seed: *seed,
		},
	}
	flights := bench.FlightsConfig{
		PopN: *popN, OpenSamples: *openSamples, Seed: *seed,
		SWG: swg.Config{
			Hidden: []int{50, 50, 50, 50, 50}, Latent: 18, Lambda: 1e-7,
			BatchSize: 500, Projections: *projections, Epochs: *epochs,
			Workers: *workers, Seed: *seed,
		},
	}

	runs := map[string]func() (fmt.Stringer, error){
		"fig5": func() (fmt.Stringer, error) { return bench.RunFigure5(spiral) },
		"fig6": func() (fmt.Stringer, error) {
			return bench.RunFigure6(bench.Fig6Config{Spiral: spiral})
		},
		"fig7": func() (fmt.Stringer, error) { return bench.RunFigure7(flights) },
		"visibility": func() (fmt.Stringer, error) {
			return bench.RunVisibility(bench.VisibilityConfig{Seed: *seed})
		},
		"sweep": func() (fmt.Stringer, error) {
			return bench.RunSweep(bench.SweepConfig{Flights: flights, Queries: 200})
		},
		"lambda": func() (fmt.Stringer, error) { return bench.RunAblationLambda(spiral, nil) },
		"projections": func() (fmt.Stringer, error) {
			return bench.RunAblationProjections(spiral, nil)
		},
		"mechanism": func() (fmt.Stringer, error) { return bench.RunAblationMechanism(flights) },
		"scope":     func() (fmt.Stringer, error) { return bench.RunAblationMarginalScope(flights) },
		"bayes":     func() (fmt.Stringer, error) { return bench.RunAblationBayesVsSWG(flights) },
		"tables":    func() (fmt.Stringer, error) { return tables{}, nil },
	}
	order := []string{"tables", "visibility", "fig5", "fig6", "fig7", "sweep",
		"lambda", "projections", "mechanism", "scope", "bayes"}

	selected := []string{*exp}
	if *exp == "all" {
		selected = order
	}
	for _, name := range selected {
		run, ok := runs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "mosaic-bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		res, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mosaic-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n\n", name, time.Since(start).Seconds(), res)
	}
}

// tables prints the static Table 1 / Table 2 inventories.
type tables struct{}

func (tables) String() string {
	out := "Table 1 — flights attributes (name, abbrev, encoded dims)\n"
	dims := map[string]int{"carrier": len(dataset.Carriers), "taxi_out": 1, "taxi_in": 1, "elapsed_time": 1, "distance": 1}
	abbrevs := map[string]string{"carrier": "C", "taxi_out": "O", "taxi_in": "I", "elapsed_time": "E", "distance": "D"}
	for i := 0; i < dataset.FlightsSchema.Len(); i++ {
		name := dataset.FlightsSchema.At(i).Name
		out += fmt.Sprintf("  %-14s %-3s %d\n", name, abbrevs[name], dims[name])
	}
	out += "\nTable 2 — evaluation queries\n"
	for _, q := range bench.FlightQueries {
		out += fmt.Sprintf("  %d  %s\n", q.ID, q.SQL)
	}
	return out
}

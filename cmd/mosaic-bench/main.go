// Command mosaic-bench regenerates the paper's evaluation tables and
// figures at configurable scale, and measures the engine's concurrency.
//
// Usage:
//
//	mosaic-bench -exp fig5|fig6|fig7|visibility|sweep|lambda|projections|
//	             mechanism|scope|bayes|tables|concurrent|exec|fleet|replica|all
//	             [-pop N] [-sample N] [-epochs N] [-projections N] [-seed N]
//	             [-workers N] [-clients LIST] [-queries-per-client N]
//	             [-rows N] [-exec-workers LIST] [-shards LIST] [-json out.json]
//
// The default scales are laptop-sized; raise -pop/-epochs/-projections to
// approach the paper's settings (426k rows, 80 epochs, p=1000).
//
// # Executor microbenchmarks
//
// The "exec" experiment races the row-at-a-time executor against the
// vectorized columnar engine on one synthetic table (-rows, default 1M):
// scan-filter, group-by at cardinalities 10/1k/100k, weighted aggregates,
// ORDER BY with the bounded top-K heap, columnar DISTINCT, the arithmetic
// WHERE kernels (scalar-broadcast constants), the column-native OPEN decode
// (row-append vs straight-into-columns generation), and prepared-statement
// amortization (per-call parse+plan vs a reused mosaic.Stmt), verifying
// byte-identical answers on every case. -exec-workers sweeps the vectorized
// path across worker counts (the morsel-parallel executor must answer
// byte-identically at every count); -shards sweeps scatter-gather shard
// counts (at 1 the answer is byte-identical to the row engine; above 1 each
// cell is verified bit-identical against a single-worker reference at the
// same shard count — the sharded determinism contract); -json writes the
// machine-readable report (committed as BENCH_exec.json at the repo root so
// the speedup trajectory is tracked PR over PR):
//
//	mosaic-bench -exp exec -rows 1000000 -exec-workers 1,2,4 -shards 1,2,4 -json BENCH_exec.json
//
// # Concurrent clients
//
// The "concurrent" experiment drives one shared engine with a sweep of
// concurrent client counts on the flights workload (SEMI-OPEN and OPEN
// Table 2 queries, warm caches) and reports throughput and speedup:
//
//	mosaic-bench -exp concurrent -clients 1,2,4,8 -queries-per-client 8 -workers 4
//
// -workers also sets the engine's intra-query parallelism (OPEN replicate
// fan-out and M-SWG training workers). Answers are deterministic for a
// fixed -seed regardless of -workers and -clients; the experiment verifies
// every client's answers byte-for-byte against a single-threaded reference
// and fails loudly on divergence.
//
// # Overload robustness
//
// The "overload" experiment serves the flights workload through a
// deliberately undersized admission controller behind a flaky reverse proxy
// (dropped and truncated connections), floods it with batch-class OPEN
// queries, and verifies the QoS contract: interactive queries keep
// completing inside their deadline, every shed request carries Retry-After,
// zero-deadline requests are refused with zero engine work, and every
// delivered answer — through faults and retries — is byte-identical to an
// in-process reference engine:
//
//	mosaic-bench -exp overload
//
// # Multi-process fleet
//
// The "fleet" experiment boots, for each -shards count N, a fleet of N
// internal/server shard instances from one snapshot plus a mosaic-coord
// scatter-gather coordinator, and drives the aggregate workload through real
// HTTP with concurrent clients. Every fleet answer is verified byte-for-byte
// against an in-process engine opened with Options.Shards: N — the fleet
// determinism contract — and the report splits queries into scattered
// (partial fan-out) vs pass-through (relayed whole to shard 0):
//
//	mosaic-bench -exp fleet -shards 1,2,4 -clients 4 -queries-per-client 4
//
// # Follower read scaling
//
// The "replica" experiment boots, for each -replicas count R, one primary
// internal/server instance, R `-follow`-style read replicas bootstrapped
// from its snapshot over real HTTP, and a coordinator registered with all
// of them, then drives the read workload with concurrent clients. Every
// routed answer — whichever backend served it — is verified byte-for-byte
// against an in-process reference, and the report splits reads by role
// (primary vs replica) so the scaling is attributable:
//
//	mosaic-bench -exp replica -replicas 0,1,2 -clients 4 -queries-per-client 4 -json BENCH_replica.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mosaic/internal/bench"
	"mosaic/internal/dataset"
	"mosaic/internal/swg"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig5, fig6, fig7, visibility, sweep, lambda, projections, mechanism, scope, bayes, tables, concurrent, http, overload, exec, fleet, replica, all)")
	popN := flag.Int("pop", 50000, "population rows")
	sampleN := flag.Int("sample", 10000, "spiral sample rows")
	epochs := flag.Int("epochs", 25, "M-SWG training epochs")
	projections := flag.Int("projections", 64, "sliced-W1 projections per ≥2-D marginal")
	workers := flag.Int("workers", 4, "engine intra-query workers (OPEN replicate fan-out, M-SWG training)")
	openSamples := flag.Int("open-samples", 10, "generated samples averaged per OPEN query")
	clients := flag.String("clients", "1,2,4,8", "comma-separated client counts for -exp concurrent")
	queriesPerClient := flag.Int("queries-per-client", 8, "queries per client for -exp concurrent")
	rows := flag.Int("rows", 1_000_000, "table size for -exp exec")
	execWorkers := flag.String("exec-workers", "1", "comma-separated worker counts swept by -exp exec's vectorized path")
	execShards := flag.String("shards", "1", "comma-separated scatter-gather shard counts swept by -exp exec's vectorized path")
	replicaSweep := flag.String("replicas", "0,1,2", "comma-separated follower counts swept by -exp replica")
	jsonOut := flag.String("json", "", "write a machine-readable JSON report of JSON-capable experiments (exec, replica) to this file")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	clientCounts, err := parseClients(*clients)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mosaic-bench: -clients: %v\n", err)
		os.Exit(2)
	}
	execWorkerCounts, err := parseClients(*execWorkers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mosaic-bench: -exec-workers: %v\n", err)
		os.Exit(2)
	}
	execShardCounts, err := parseClients(*execShards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mosaic-bench: -shards: %v\n", err)
		os.Exit(2)
	}
	replicaCounts, err := parseCounts(*replicaSweep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mosaic-bench: -replicas: %v\n", err)
		os.Exit(2)
	}

	spiral := bench.SpiralConfig{
		PopN: *popN, SampleN: *sampleN, Seed: *seed,
		SWG: swg.Config{
			Hidden: []int{100, 100, 100}, Latent: 2, Lambda: 0.04,
			BatchSize: 500, Projections: *projections, Epochs: *epochs,
			Workers: *workers, Seed: *seed,
		},
	}
	flights := bench.FlightsConfig{
		PopN: *popN, OpenSamples: *openSamples, Workers: *workers, Seed: *seed,
		SWG: swg.Config{
			Hidden: []int{50, 50, 50, 50, 50}, Latent: 18, Lambda: 1e-7,
			BatchSize: 500, Projections: *projections, Epochs: *epochs,
			Workers: *workers, Seed: *seed,
		},
	}

	runs := map[string]func() (fmt.Stringer, error){
		"fig5": func() (fmt.Stringer, error) { return bench.RunFigure5(spiral) },
		"fig6": func() (fmt.Stringer, error) {
			return bench.RunFigure6(bench.Fig6Config{Spiral: spiral})
		},
		"fig7": func() (fmt.Stringer, error) { return bench.RunFigure7(flights) },
		"visibility": func() (fmt.Stringer, error) {
			return bench.RunVisibility(bench.VisibilityConfig{Seed: *seed})
		},
		"sweep": func() (fmt.Stringer, error) {
			return bench.RunSweep(bench.SweepConfig{Flights: flights, Queries: 200})
		},
		"lambda": func() (fmt.Stringer, error) { return bench.RunAblationLambda(spiral, nil) },
		"projections": func() (fmt.Stringer, error) {
			return bench.RunAblationProjections(spiral, nil)
		},
		"mechanism": func() (fmt.Stringer, error) { return bench.RunAblationMechanism(flights) },
		"scope":     func() (fmt.Stringer, error) { return bench.RunAblationMarginalScope(flights) },
		"bayes":     func() (fmt.Stringer, error) { return bench.RunAblationBayesVsSWG(flights) },
		"tables":    func() (fmt.Stringer, error) { return tables{}, nil },
		"concurrent": func() (fmt.Stringer, error) {
			return bench.RunConcurrentClients(bench.ConcurrentConfig{
				Flights: flights, Clients: clientCounts, QueriesPerClient: *queriesPerClient,
			})
		},
		"http": func() (fmt.Stringer, error) {
			return bench.RunHTTPLoad(bench.HTTPLoadConfig{
				Flights: flights, Clients: clientCounts, QueriesPerClient: *queriesPerClient,
			})
		},
		"overload": func() (fmt.Stringer, error) {
			return bench.RunOverload(bench.OverloadConfig{
				Flights: flights, QueriesPerClient: *queriesPerClient,
			})
		},
		"exec": func() (fmt.Stringer, error) {
			return bench.RunExecMicro(bench.ExecConfig{Rows: *rows, Seed: *seed, Workers: execWorkerCounts, Shards: execShardCounts})
		},
		"fleet": func() (fmt.Stringer, error) {
			return bench.RunFleet(bench.FleetConfig{
				Flights: flights, Shards: execShardCounts, Rounds: *queriesPerClient, Clients: clientCounts[len(clientCounts)-1],
			})
		},
		"replica": func() (fmt.Stringer, error) {
			return bench.RunReplica(bench.ReplicaConfig{
				Flights: flights, Replicas: replicaCounts, Rounds: *queriesPerClient, Clients: clientCounts[len(clientCounts)-1],
			})
		},
	}
	order := []string{"tables", "visibility", "fig5", "fig6", "fig7", "sweep",
		"lambda", "projections", "mechanism", "scope", "bayes", "concurrent", "http", "overload", "exec", "fleet", "replica"}

	selected := []string{*exp}
	if *exp == "all" {
		selected = order
	}
	for _, name := range selected {
		run, ok := runs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "mosaic-bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		res, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mosaic-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n\n", name, time.Since(start).Seconds(), res)
		if *jsonOut != "" {
			if j, ok := res.(interface{ JSON() ([]byte, error) }); ok {
				data, err := j.JSON()
				if err != nil {
					fmt.Fprintf(os.Stderr, "mosaic-bench: %s: JSON: %v\n", name, err)
					os.Exit(1)
				}
				if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "mosaic-bench: %s: %v\n", name, err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n\n", *jsonOut)
			}
		}
	}
}

// parseCounts parses a comma-separated list of non-negative counts (a
// replica sweep legitimately starts at 0 — the no-follower baseline).
func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseClients parses a comma-separated list of positive client counts.
func parseClients(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// tables prints the static Table 1 / Table 2 inventories.
type tables struct{}

func (tables) String() string {
	out := "Table 1 — flights attributes (name, abbrev, encoded dims)\n"
	dims := map[string]int{"carrier": len(dataset.Carriers), "taxi_out": 1, "taxi_in": 1, "elapsed_time": 1, "distance": 1}
	abbrevs := map[string]string{"carrier": "C", "taxi_out": "O", "taxi_in": "I", "elapsed_time": "E", "distance": "D"}
	for i := 0; i < dataset.FlightsSchema.Len(); i++ {
		name := dataset.FlightsSchema.At(i).Name
		out += fmt.Sprintf("  %-14s %-3s %d\n", name, abbrevs[name], dims[name])
	}
	out += "\nTable 2 — evaluation queries\n"
	for _, q := range bench.FlightQueries {
		out += fmt.Sprintf("  %d  %s\n", q.ID, q.SQL)
	}
	return out
}

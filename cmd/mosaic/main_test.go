package main

import (
	"os"
	"path/filepath"
	"testing"

	"mosaic"
)

func TestRunScriptExecutesAndPrints(t *testing.T) {
	db := mosaic.Open(nil)
	// Results print to stdout; capture is unnecessary — we assert behaviour
	// through the database state and the returned error.
	err := runScript(db, `
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1), (2), (3);
	`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Scalar("SELECT COUNT(*) FROM t")
	if err != nil || got != 3 {
		t.Errorf("COUNT after script = %g, %v", got, err)
	}
	if err := runScript(db, "SELECT broken FROM"); err == nil {
		t.Error("parse error should propagate")
	}
}

func TestRunScriptPartialFailureKeepsEarlierStatements(t *testing.T) {
	db := mosaic.Open(nil)
	err := runScript(db, `
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES ('not an int');
	`)
	if err == nil {
		t.Fatal("type error should propagate")
	}
	// The CREATE TABLE before the failure persists (no transactionality —
	// documented behaviour for the shell).
	if _, err := db.Table("t"); err != nil {
		t.Errorf("earlier statement should have applied: %v", err)
	}
}

func TestScriptFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.sql")
	script := "CREATE TABLE t (a INT);\nINSERT INTO t VALUES (7);\nSELECT a FROM t;\n"
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	db := mosaic.Open(nil)
	if err := runScript(db, string(src)); err != nil {
		t.Fatal(err)
	}
}

// Command mosaic is an interactive shell and script runner for the Mosaic
// open-world database.
//
// Usage:
//
//	mosaic [-seed N] [-open-samples N] [-workers N] [-remote URL]
//	       [-timeout D] [file.sql ...]
//
// With file arguments, each script executes in order against one shared
// database and SELECT results print to stdout. Without arguments, mosaic
// reads statements from stdin (terminated by ';'), REPL-style.
//
// With -remote http://host:port the shell drives a mosaic-serve instance
// instead of an in-process engine: statements travel over the HTTP API and
// results come back byte-for-byte identical to local execution (the engine
// flags are then ignored — the server's options apply).
//
// -timeout bounds each submitted script with a context deadline: an
// overrunning statement (e.g. a cold OPEN query) is cancelled — locally the
// engine aborts at its next checkpoint, remotely the server cancels the
// statement — and the shell stays usable.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mosaic"
	"mosaic/client"
)

// runner abstracts the two backends of the shell: an in-process mosaic.DB or
// a remote mosaic-serve driven through mosaic/client. Both honor the
// script context end to end.
type runner interface {
	RunContext(ctx context.Context, script string) ([]*mosaic.Result, error)
}

func main() {
	seed := flag.Int64("seed", 1, "random seed driving IPF/M-SWG determinism")
	openSamples := flag.Int("open-samples", 10, "generated samples averaged per OPEN query")
	epochs := flag.Int("swg-epochs", 20, "M-SWG training epochs for OPEN queries")
	workers := flag.Int("workers", 0, "intra-query workers (morsel-parallel kernels, OPEN replicate fan-out, M-SWG training); 0 = all cores (GOMAXPROCS), answers are identical for any value")
	remote := flag.String("remote", "", "drive a mosaic-serve instance at this base URL instead of an in-process engine")
	timeout := flag.Duration("timeout", 0, "per-script deadline; overrunning statements are cancelled (0 = no limit)")
	flag.Parse()
	scriptTimeout = *timeout

	var db runner
	if *remote != "" {
		c := client.New(*remote)
		if err := c.Health(); err != nil {
			fatalf("mosaic: cannot reach %s: %v", *remote, err)
		}
		db = c
	} else {
		db = mosaic.Open(&mosaic.Options{
			Seed:        *seed,
			OpenSamples: *openSamples,
			Workers:     *workers,
			SWG:         mosaic.SWGConfig{Epochs: *epochs},
		})
	}

	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fatalf("mosaic: %v", err)
			}
			if err := runScript(db, string(src)); err != nil {
				fatalf("mosaic: %s: %v", path, err)
			}
		}
		return
	}
	repl(db)
}

// scriptTimeout is the -timeout flag: a per-script context deadline.
var scriptTimeout time.Duration

func runScript(db runner, src string) error {
	ctx := context.Background()
	if scriptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, scriptTimeout)
		defer cancel()
	}
	results, err := db.RunContext(ctx, src)
	for _, res := range results {
		if res != nil {
			fmt.Println(res.String())
			fmt.Println()
		}
	}
	return err
}

func repl(db runner) {
	fmt.Println("Mosaic — open world query processing. Statements end with ';'. Ctrl-D exits.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "mosaic> "
	fmt.Print(prompt)
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			if err := runScript(db, buf.String()); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			buf.Reset()
			fmt.Print(prompt)
		} else {
			fmt.Print("   ...> ")
		}
	}
	if buf.Len() > 0 {
		if err := runScript(db, buf.String()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
	fmt.Println()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// Command mosaic-coord fronts a fleet of mosaic-serve shard processes with
// one coordinator endpoint speaking the same wire protocol (POST /v1/query,
// POST /v1/exec, GET /v1/explain, /healthz, /statsz).
//
// Usage:
//
//	mosaic-coord -shards http://h1:7171,http://h2:7171[,...]
//	             [-replicas 0=http://h1r:7173,1=http://h2r:7173[,...]]
//	             [-addr :7172] [-request-timeout 30s]
//	             [-retries 3] [-boot-timeout 30s]
//	             [-replica-poll 250ms]
//
// -replicas registers read-only follower processes (mosaic-serve -follow)
// per shard index: reads balance across each shard's primary and its
// caught-up replicas by EWMA latency and fail over between them, while
// writes fan out to primaries only. The whole topology is validated at
// boot: every URL needs an http(s) scheme and host, replica indices must
// address a configured shard, and no URL may serve two roles.
//
// Every shard holds the full dataset: /v1/exec scripts fan out to all shards
// under a generation handshake, and CLOSED/SEMI-OPEN aggregate queries
// scatter as per-shard partial plans (shard i computes slice i of N over its
// copy) whose states merge in the fixed -shards order — so fleet answers are
// bit-identical to a single engine opened with Options.Shards: N, and a
// one-shard fleet is byte-identical to the row engine. OPEN and
// non-aggregate queries pass through whole to the first shard.
//
// On boot the coordinator probes every shard until the fleet agrees on one
// DDL/DML generation (or -boot-timeout expires). A shard that later answers
// at a different generation — a restart, a side-channel mutation — turns
// queries into clean 503s rather than wrong answers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mosaic/client"
	"mosaic/internal/coord"
)

func main() {
	addr := flag.String("addr", ":7172", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs, e.g. http://h1:7171,http://h2:7171; the order is part of the float-aggregate answer contract")
	replicas := flag.String("replicas", "", "comma-separated shardIndex=URL follower registrations, e.g. 0=http://h1r:7173,0=http://h1r2:7174")
	replicaPoll := flag.Duration("replica-poll", 250*time.Millisecond, "how often replica generations are probed for read eligibility")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline, end to end across all shard calls")
	retries := flag.Int("retries", 3, "per-shard retries of idempotent calls (queries, scatters); exec is never retried")
	bootTimeout := flag.Duration("boot-timeout", 30*time.Second, "how long to wait for every shard to come up and agree on a generation")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("mosaic-coord: -shards is required (comma-separated shard base URLs)")
	}

	replicaMap, err := parseReplicas(*replicas)
	if err != nil {
		log.Fatalf("mosaic-coord: %v", err)
	}
	// Validate the whole topology up front for one clear fatal instead of a
	// half-constructed coordinator (New re-validates, but this names the
	// flag at fault).
	if err := coord.ValidateTopology(urls, replicaMap); err != nil {
		log.Fatalf("mosaic-coord: bad -shards/-replicas topology: %v", err)
	}

	c, err := coord.New(coord.Config{
		Shards:              urls,
		Replicas:            replicaMap,
		ReplicaPollInterval: *replicaPoll,
		Retry:               client.RetryPolicy{MaxRetries: *retries},
		RequestTimeout:      *requestTimeout,
		Logf:                log.Printf,
	})
	if err != nil {
		log.Fatalf("mosaic-coord: %v", err)
	}
	defer c.Close()

	// Boot handshake: serve only once the whole fleet is reachable and agrees
	// on one generation. Shards may still be starting — keep probing.
	bootCtx, bootCancel := context.WithTimeout(context.Background(), *bootTimeout)
	for {
		err = c.Sync(bootCtx)
		if err == nil {
			break
		}
		select {
		case <-bootCtx.Done():
			log.Fatalf("mosaic-coord: fleet did not converge within %s: %v", *bootTimeout, err)
		case <-time.After(250 * time.Millisecond):
		}
	}
	bootCancel()
	nReplicas := 0
	for _, rs := range replicaMap {
		nReplicas += len(rs)
	}
	log.Printf("mosaic-coord: fleet of %d shards (+%d read replicas) at generation %d", len(urls), nReplicas, c.Generation())

	httpSrv := &http.Server{Addr: *addr, Handler: c.Handler()}
	done := make(chan error, 1)
	go func() {
		log.Printf("mosaic-coord listening on %s", *addr)
		err := httpSrv.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		done <- err
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("mosaic-coord: %v", err)
		}
	case s := <-sig:
		log.Printf("received %s, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = httpSrv.Shutdown(ctx)
		cancel()
	}
	fmt.Fprintln(os.Stderr, "mosaic-coord: bye")
}

// parseReplicas parses the -replicas flag: comma-separated shardIndex=URL
// pairs, e.g. "0=http://h1r:7173,0=http://h1r2:7174,1=http://h2r:7173".
func parseReplicas(raw string) (map[int][]string, error) {
	out := make(map[int][]string)
	for _, entry := range strings.Split(raw, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		idx, u, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("-replicas entry %q: want shardIndex=URL", entry)
		}
		shard, err := strconv.Atoi(strings.TrimSpace(idx))
		if err != nil {
			return nil, fmt.Errorf("-replicas entry %q: bad shard index %q", entry, idx)
		}
		out[shard] = append(out[shard], strings.TrimSpace(u))
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// Command mosaic-serve exposes a Mosaic database over HTTP/JSON — the
// network front door for the engine (POST /v1/query, POST /v1/exec,
// GET /v1/explain, /healthz, /statsz).
//
// Usage:
//
//	mosaic-serve [-addr :7171] [-snapshot state.sql] [-snapshot-interval 30s]
//	             [-max-concurrent 64] [-batch-max-concurrent 32]
//	             [-shed-margin 1.0] [-qos-config qos.json]
//	             [-request-timeout 30s]
//	             [-follow http://primary:7171] [-follow-interval 500ms]
//	             [-follow-staleness 10s] [-follow-boot-timeout 30s]
//	             [-seed N] [-open-samples N] [-swg-epochs N] [-workers N]
//	             [-shards N] [init.sql ...]
//
// With -snapshot, the server restores the file on boot (when present),
// rewrites it atomically every -snapshot-interval, and writes a final
// snapshot on SIGINT/SIGTERM before exiting — so a kill + restart preserves
// the catalog, rows, metadata, and sample weights exactly. Positional
// scripts run after the boot restore (useful to seed a fresh instance).
//
// With -follow, the process runs as a read-only follower replica: it
// bootstraps from the primary's GET /v1/snapshot, tails its statement log
// (GET /v1/snapshot/delta) every -follow-interval, refuses DDL/DML with
// 403, and reports replication lag in /statsz. The follower MUST run with
// the same -seed/-shards/-open-samples/-swg-epochs as its primary:
// statement replay is only bit-identical across identical engine Options.
// -follow excludes -snapshot and init scripts — a follower's state comes
// from its primary, nowhere else.
//
// -request-timeout is a real bound on server-side work, not just on the
// response: a request that exceeds it answers 504 AND is cancelled inside
// the engine (training, generation, fitting, and scans all checkpoint the
// request context), freeing its admission slot immediately. /statsz reports
// these under "cancelled". Clients can also cancel early by dropping the
// connection or using mosaic/client's *Context methods.
//
// # Quality of service
//
// Requests carry a priority class (X-Mosaic-Priority: interactive|batch;
// queries default by visibility) and optionally a propagated deadline
// (X-Mosaic-Deadline-Ms). -max-concurrent bounds total concurrency,
// -batch-max-concurrent caps the batch class so it can never starve
// interactive work, and -shed-margin scales the latency estimate used to
// refuse doomed requests up front (503 + Retry-After).
//
// SIGHUP reloads the QoS limits live, without dropping in-flight requests:
// with -qos-config the file ({"max_concurrent": N, "batch_max_concurrent":
// N, "shed_margin": F}) is re-read; without it SIGHUP reapplies the
// command-line values (a no-op, but confirms the handler in logs).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mosaic"
	"mosaic/client"
	"mosaic/internal/repl"
	"mosaic/internal/server"
)

func main() {
	addr := flag.String("addr", ":7171", "listen address")
	snapshot := flag.String("snapshot", "", "snapshot file: restored on boot, rewritten on interval and shutdown")
	snapshotInterval := flag.Duration("snapshot-interval", 30*time.Second, "background snapshot period")
	maxConcurrent := flag.Int("max-concurrent", 64, "max concurrently executing requests (admission gate)")
	batchMaxConcurrent := flag.Int("batch-max-concurrent", 0, "max concurrently executing batch-class requests; 0 = max-concurrent/2")
	shedMargin := flag.Float64("shed-margin", 1.0, "shed a request when EWMA latency × margin exceeds its deadline budget; negative disables estimate-based shedding")
	qosConfig := flag.String("qos-config", "", "JSON file with QoS limits, re-read on SIGHUP (overrides the QoS flags)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
	follow := flag.String("follow", "", "primary base URL to replicate from; runs this process as a read-only follower")
	followInterval := flag.Duration("follow-interval", 500*time.Millisecond, "delta poll period in follower mode")
	followStaleness := flag.Duration("follow-staleness", 10*time.Second, "mark the follower degraded after this long without a successful sync (health only)")
	followBootTimeout := flag.Duration("follow-boot-timeout", 30*time.Second, "how long to wait for the primary to serve the initial bootstrap snapshot")
	seed := flag.Int64("seed", 1, "random seed driving IPF/M-SWG determinism")
	openSamples := flag.Int("open-samples", 10, "generated samples averaged per OPEN query")
	epochs := flag.Int("swg-epochs", 20, "M-SWG training epochs for OPEN queries")
	workers := flag.Int("workers", 0, "intra-query workers; 0 = all cores (GOMAXPROCS), answers are identical for any value")
	shards := flag.Int("shards", 1, "scatter-gather shards for CLOSED/SEMI-OPEN aggregates; 1 = unsharded; unlike -workers the value is part of the answer contract for float aggregates")
	stmtLog := flag.Int("stmt-log", 0, "mutations retained for follower replication deltas; 0 = default (1024), negative forces followers onto full snapshots")
	flag.Parse()

	db := mosaic.Open(&mosaic.Options{
		Seed:        *seed,
		OpenSamples: *openSamples,
		Workers:     *workers,
		Shards:      *shards,
		SWG:         mosaic.SWGConfig{Epochs: *epochs},
		StmtLogSize: *stmtLog,
	})

	flagQoS := server.QoSConfig{
		MaxConcurrent:      *maxConcurrent,
		BatchMaxConcurrent: *batchMaxConcurrent,
		ShedMargin:         *shedMargin,
	}
	bootQoS := flagQoS
	if *qosConfig != "" {
		q, err := loadQoS(*qosConfig, flagQoS)
		if err != nil {
			log.Fatalf("mosaic-serve: %v", err)
		}
		bootQoS = q
	}

	srvCfg := server.Config{
		DB:                 db,
		MaxConcurrent:      bootQoS.MaxConcurrent,
		BatchMaxConcurrent: bootQoS.BatchMaxConcurrent,
		ShedMargin:         bootQoS.ShedMargin,
		RequestTimeout:     *requestTimeout,
		SnapshotPath:       *snapshot,
		SnapshotInterval:   *snapshotInterval,
		Logf:               log.Printf,
	}

	// Follower mode: the process's state comes from its primary and nowhere
	// else — local persistence and init scripts are contradictions, not
	// conveniences, so they are hard errors.
	var follower *repl.Follower
	if *follow != "" {
		if *snapshot != "" {
			log.Fatal("mosaic-serve: -follow excludes -snapshot (a follower's state comes from its primary)")
		}
		if flag.NArg() > 0 {
			log.Fatalf("mosaic-serve: -follow excludes init scripts %v (a follower's state comes from its primary)", flag.Args())
		}
		f, err := repl.NewFollower(repl.Config{
			Primary:      *follow,
			DB:           db,
			PollInterval: *followInterval,
			StalenessMax: *followStaleness,
			Retry:        client.RetryPolicy{},
			Logf:         log.Printf,
		})
		if err != nil {
			log.Fatalf("mosaic-serve: %v", err)
		}
		// The primary may still be booting: keep retrying the bootstrap
		// until it serves a snapshot or the boot window closes.
		bootCtx, bootCancel := context.WithTimeout(context.Background(), *followBootTimeout)
		for {
			err = f.Start(bootCtx)
			if err == nil {
				break
			}
			select {
			case <-bootCtx.Done():
				log.Fatalf("mosaic-serve: primary %s did not serve a bootstrap snapshot within %s: %v", *follow, *followBootTimeout, err)
			case <-time.After(250 * time.Millisecond):
			}
		}
		bootCancel()
		follower = f
		srvCfg.Follower = f
		log.Printf("mosaic-serve: following %s from generation %d", *follow, f.Generation())
	}

	srv, err := server.New(srvCfg)
	if err != nil {
		log.Fatalf("mosaic-serve: %v", err)
	}

	// Positional scripts seed a *fresh* instance. After a snapshot restore
	// the state they created is already present — replaying them would fail
	// on every CREATE (or silently duplicate rows), so they are skipped.
	if srv.Restored() && flag.NArg() > 0 {
		log.Printf("snapshot restored; skipping init scripts %v", flag.Args())
	} else {
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				log.Fatalf("mosaic-serve: %v", err)
			}
			if err := db.Exec(string(src)); err != nil {
				log.Fatalf("mosaic-serve: %s: %v", path, err)
			}
			log.Printf("executed %s", path)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() {
		log.Printf("mosaic-serve listening on %s", *addr)
		err := httpSrv.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		done <- err
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
loop:
	for {
		select {
		case err := <-done:
			if err != nil {
				log.Fatalf("mosaic-serve: %v", err)
			}
			break loop
		case s := <-sig:
			if s == syscall.SIGHUP {
				// Live QoS reload: in-flight requests are untouched; only
				// new admissions see the swapped limits.
				q := flagQoS
				if *qosConfig != "" {
					loaded, err := loadQoS(*qosConfig, flagQoS)
					if err != nil {
						log.Printf("SIGHUP: %v (keeping current limits)", err)
						continue
					}
					q = loaded
				}
				srv.ApplyQoS(q)
				log.Printf("SIGHUP: QoS limits reloaded")
				continue
			}
			log.Printf("received %s, shutting down", s)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = httpSrv.Shutdown(ctx)
			cancel()
			break loop
		}
	}
	if follower != nil {
		follower.Close()
	}
	// Final snapshot (when configured): the restart-from-snapshot guarantee.
	if err := srv.Close(); err != nil {
		log.Fatalf("mosaic-serve: final snapshot: %v", err)
	}
	fmt.Fprintln(os.Stderr, "mosaic-serve: bye")
}

// loadQoS reads a QoS limits file, starting from the flag-derived defaults so
// a partial file (e.g. only shed_margin) keeps the rest.
func loadQoS(path string, base server.QoSConfig) (server.QoSConfig, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return base, fmt.Errorf("qos-config: %v", err)
	}
	q := base
	if err := json.Unmarshal(src, &q); err != nil {
		return base, fmt.Errorf("qos-config %s: %v", path, err)
	}
	return q, nil
}

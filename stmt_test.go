package mosaic

import (
	"testing"
)

// TestStmtSurvivesDDLAndRestore: a public-API Stmt keeps answering correctly
// across DDL (generation bump) and across Restore (whole-engine swap).
func TestStmtSurvivesDDLAndRestore(t *testing.T) {
	db := Open(nil)
	if err := db.Exec(`CREATE TABLE T (a INT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("T", [][]any{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(`SELECT COUNT(*) FROM T WHERE a > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", stmt.NumParams())
	}
	mustScalar := func(want float64, args ...any) {
		t.Helper()
		got, err := stmt.Scalar(args...)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("stmt.Scalar(%v) = %g, want %g", args, got, want)
		}
	}
	mustScalar(2, 1)

	// DDL after Prepare: the cached plan must refresh.
	if err := db.Ingest("T", [][]any{{10}}); err != nil {
		t.Fatal(err)
	}
	mustScalar(3, 1)

	// Restore swaps the engine wholesale; the Stmt follows.
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Restore(snap); err != nil {
		t.Fatal(err)
	}
	mustScalar(3, 1)
	mustScalar(4, 0)

	// Wrong arity errors cleanly.
	if _, err := stmt.Query(); err == nil {
		t.Error("missing binding accepted")
	}
	if _, err := stmt.Query(1, 2); err == nil {
		t.Error("excess binding accepted")
	}
}

// TestQueryArgsMatchInline: DB.Query's variadic args answer identically to
// inlined literals for every supported Go-native parameter type.
func TestQueryArgsMatchInline(t *testing.T) {
	db := Open(nil)
	if err := db.Exec(`CREATE TABLE P (s TEXT, i INT, f FLOAT, b BOOL)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("P", [][]any{
		{"x", 1, 1.5, true}, {"y", 2, 2.5, false}, {"x", 3, 3.5, true},
	}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		param, literal string
		args           []any
	}{
		{`SELECT COUNT(*) FROM P WHERE s = ?`, `SELECT COUNT(*) FROM P WHERE s = 'x'`, []any{"x"}},
		{`SELECT COUNT(*) FROM P WHERE i > ?`, `SELECT COUNT(*) FROM P WHERE i > 1`, []any{1}},
		{`SELECT COUNT(*) FROM P WHERE f < ?`, `SELECT COUNT(*) FROM P WHERE f < 3.0`, []any{3.0}},
		{`SELECT COUNT(*) FROM P WHERE b = ?`, `SELECT COUNT(*) FROM P WHERE b = TRUE`, []any{true}},
		{`SELECT COUNT(*) FROM P WHERE i IN (?, ?)`, `SELECT COUNT(*) FROM P WHERE i IN (1, 3)`, []any{1, 3}},
	}
	for _, tc := range cases {
		got, err := db.Query(tc.param, tc.args...)
		if err != nil {
			t.Fatalf("%q: %v", tc.param, err)
		}
		want, err := db.Query(tc.literal)
		if err != nil {
			t.Fatalf("%q: %v", tc.literal, err)
		}
		if got.String() != want.String() {
			t.Errorf("%q diverged from %q:\n got: %s\nwant: %s", tc.param, tc.literal, got, want)
		}
	}
}

package mosaic

import (
	"context"
	"sync"

	"mosaic/internal/core"
	"mosaic/internal/sql"
)

// Stmt is a prepared SELECT: the query is parsed once at Prepare time and
// the engine-side resolution (relation route, chosen sample, marginal scope)
// is cached across executions, so re-executing a Stmt skips re-parsing and
// re-planning entirely. `?` placeholders bind per execution, in order, via
// the args of Query/QueryContext; a bound execution answers byte-identically
// to the same query with the literals spelled inline.
//
// A Stmt never goes stale: the engine stamps every DDL/DML with a generation
// counter and the Stmt re-resolves its plan transparently when the counter
// moves (or when Restore swaps in a new engine). It is safe for concurrent
// use by multiple goroutines.
type Stmt struct {
	db    *DB
	query string
	sel   *sql.Select

	mu  sync.Mutex
	eng *core.Engine
	pq  *core.PreparedQuery
}

// Prepare parses query once and returns a reusable statement handle.
// Relation names and plans resolve lazily at first execution, so Prepare
// succeeds even before the referenced relations exist.
func (db *DB) Prepare(query string) (*Stmt, error) {
	sel, err := sql.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, query: query, sel: sel}, nil
}

// Text returns the statement's SQL text as prepared.
func (s *Stmt) Text() string { return s.query }

// NumParams returns the number of `?` placeholders the statement binds.
func (s *Stmt) NumParams() int { return s.sel.NumParams }

// Close releases the statement. It exists for database/sql-style symmetry;
// a Stmt holds no engine-side resources beyond its cached plan, so Close is
// optional and the Stmt remains usable afterwards.
func (s *Stmt) Close() error { return nil }

// prepared returns the engine-side prepared query for the DB's current
// engine, replacing it when Restore has swapped engines.
func (s *Stmt) prepared(eng *core.Engine) *core.PreparedQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pq == nil || s.eng != eng {
		s.eng = eng
		s.pq = eng.Prepare(s.sel)
	}
	return s.pq
}

// Query executes the statement with args bound to its placeholders.
func (s *Stmt) Query(args ...any) (*Result, error) {
	return s.QueryContext(context.Background(), args...)
}

// QueryContext is Query with a cancellation context (the same checkpoints
// DB.QueryContext honors).
func (s *Stmt) QueryContext(ctx context.Context, args ...any) (*Result, error) {
	bound, err := bindArgs(s.sel, args)
	if err != nil {
		return nil, err
	}
	eng := s.db.eng()
	return eng.QueryPrepared(ctx, s.prepared(eng), bound)
}

// Scalar executes the statement and returns the lone cell of its 1×1 answer.
func (s *Stmt) Scalar(args ...any) (float64, error) {
	return s.ScalarContext(context.Background(), args...)
}

// ScalarContext is Scalar with a cancellation context.
func (s *Stmt) ScalarContext(ctx context.Context, args ...any) (float64, error) {
	res, err := s.QueryContext(ctx, args...)
	if err != nil {
		return 0, err
	}
	return scalarCell(res)
}

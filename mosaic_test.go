package mosaic_test

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"mosaic"
	"mosaic/internal/dataset"
	"mosaic/internal/value"
)

// buildMigrantsDB reproduces the paper's Sec 2 setup: a migrants population,
// Eurostat-style marginals, and a Yahoo-only biased sample.
func buildMigrantsDB(t testing.TB, opts *mosaic.Options) (*mosaic.DB, float64) {
	t.Helper()
	if opts == nil {
		opts = &mosaic.Options{
			Seed:        7,
			OpenSamples: 3,
			SWG: mosaic.SWGConfig{
				Hidden:      []int{32, 32},
				Latent:      4,
				Epochs:      6,
				Projections: 24,
				BatchSize:   200,
			},
		}
	}
	db := mosaic.Open(opts)

	pop := dataset.Migrants(dataset.MigrantsConfig{N: 8000, Seed: 11})

	err := db.Exec(`
		CREATE TEMPORARY TABLE Eurostat (country TEXT, email TEXT, reported_count INT);
		CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT, age INT);
		CREATE SAMPLE YahooMigrants AS
			(SELECT * FROM EuropeMigrants WHERE email = 'Yahoo');
	`)
	if err != nil {
		t.Fatalf("setup DDL: %v", err)
	}

	// Build ground-truth per-(country,email) counts from the synthetic
	// population and load them into the Eurostat auxiliary table.
	counts := map[[2]string]int64{}
	var popTotal float64
	popTable := pop
	for i := 0; i < popTable.Len(); i++ {
		row := popTable.Row(i)
		k := [2]string{row[0].AsText(), row[1].AsText()}
		counts[k]++
		popTotal++
	}
	// Sort cells so the statement stream (and hence the encoder's
	// categorical layout) is identical across runs — determinism is defined
	// over identical statement streams.
	var keys [][2]string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var rows [][]any
	for _, k := range keys {
		rows = append(rows, []any{k[0], k[1], counts[k]})
	}
	if err := db.Ingest("Eurostat", rows); err != nil {
		t.Fatalf("ingest eurostat: %v", err)
	}

	err = db.Exec(`
		CREATE METADATA EuropeMigrants_M1 AS
			(SELECT country, reported_count FROM Eurostat);
		CREATE METADATA EuropeMigrants_M2 AS
			(SELECT email, reported_count FROM Eurostat);
	`)
	if err != nil {
		t.Fatalf("metadata: %v", err)
	}

	// Ingest the biased sample: all Yahoo users of the population.
	var sample [][]any
	for i := 0; i < popTable.Len(); i++ {
		row := popTable.Row(i)
		if row[1].AsText() == "Yahoo" {
			sample = append(sample, []any{row[0].AsText(), row[1].AsText(), row[2].AsInt()})
		}
	}
	if err := db.Ingest("YahooMigrants", sample); err != nil {
		t.Fatalf("ingest sample: %v", err)
	}
	return db, popTotal
}

func TestMigrantsClosedQuery(t *testing.T) {
	db, _ := buildMigrantsDB(t, nil)
	res, err := db.Query(`SELECT CLOSED country, email, COUNT(*) FROM EuropeMigrants GROUP BY country, email`)
	if err != nil {
		t.Fatalf("closed query: %v", err)
	}
	// Closed answers only see Yahoo tuples, with raw (weight-1) counts.
	for _, row := range res.Rows {
		if got := row[1].AsText(); got != "Yahoo" {
			t.Errorf("closed answer contains non-sample provider %q", got)
		}
	}
	if len(res.Rows) == 0 {
		t.Fatal("closed query returned no rows")
	}
}

func TestMigrantsSemiOpenQuery(t *testing.T) {
	db, popTotal := buildMigrantsDB(t, nil)
	// SEMI-OPEN total count should match the population size implied by
	// the marginals (IPF drives the weighted sample onto them).
	got, err := db.Scalar(`SELECT SEMI-OPEN COUNT(*) FROM EuropeMigrants`)
	if err != nil {
		t.Fatalf("semi-open query: %v", err)
	}
	if math.Abs(got-popTotal)/popTotal > 0.01 {
		t.Errorf("SEMI-OPEN COUNT(*) = %.1f, want ≈ %.0f", got, popTotal)
	}

	// Per-country counts should match the marginal exactly (IPF fits the
	// country marginal), even though the sample is Yahoo-only.
	res, err := db.Query(`SELECT SEMI-OPEN country, COUNT(*) AS c FROM EuropeMigrants GROUP BY country ORDER BY country`)
	if err != nil {
		t.Fatalf("semi-open group query: %v", err)
	}
	truth, err := db.Query(`SELECT country, SUM(reported_count) AS c FROM Eurostat GROUP BY country ORDER BY country`)
	if err != nil {
		t.Fatalf("truth query: %v", err)
	}
	if len(res.Rows) != len(truth.Rows) {
		t.Fatalf("got %d countries, want %d", len(res.Rows), len(truth.Rows))
	}
	for i := range res.Rows {
		got, _ := res.Rows[i][1].Float64()
		want, _ := truth.Rows[i][1].Float64()
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("country %s: SEMI-OPEN count %.1f, want ≈ %.1f", res.Rows[i][0], got, want)
		}
	}

	// SEMI-OPEN cannot invent providers: the email group-by still only has
	// Yahoo (the paper's first example query).
	res, err = db.Query(`SELECT SEMI-OPEN country, email, COUNT(*) FROM EuropeMigrants GROUP BY country, email`)
	if err != nil {
		t.Fatalf("semi-open 2-group query: %v", err)
	}
	for _, row := range res.Rows {
		if row[1].AsText() != "Yahoo" {
			t.Errorf("SEMI-OPEN generated provider %q; reweighting must not create tuples", row[1].AsText())
		}
	}
}

func TestMigrantsOpenQueryGeneratesMissingProviders(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a generator")
	}
	db, _ := buildMigrantsDB(t, nil)
	res, err := db.Query(`SELECT OPEN email, COUNT(*) FROM EuropeMigrants GROUP BY email`)
	if err != nil {
		t.Fatalf("open query: %v", err)
	}
	providers := map[string]bool{}
	for _, row := range res.Rows {
		providers[row[0].AsText()] = true
	}
	// The paper's second example: OPEN answers include providers missing
	// from the Yahoo-only sample (e.g. AOL/Gmail).
	nonYahoo := 0
	for p := range providers {
		if p != "Yahoo" {
			nonYahoo++
		}
	}
	if nonYahoo == 0 {
		t.Errorf("OPEN query generated no missing providers; got %v", providers)
	}
}

func TestVisibilityParsingVariants(t *testing.T) {
	db, _ := buildMigrantsDB(t, nil)
	for _, q := range []string{
		`SELECT SEMI-OPEN COUNT(*) FROM EuropeMigrants`,
		`SELECT SEMIOPEN COUNT(*) FROM EuropeMigrants`,
		`SELECT SEMI_OPEN COUNT(*) FROM EuropeMigrants`,
	} {
		if _, err := db.Scalar(q); err != nil {
			t.Errorf("query %q: %v", q, err)
		}
	}
}

func TestOpenRejectedWithoutMarginals(t *testing.T) {
	db := mosaic.Open(nil)
	err := db.Exec(`
		CREATE GLOBAL POPULATION P (a INT, b INT);
		CREATE SAMPLE S AS (SELECT * FROM P);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("S", [][]any{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	_, err = db.Query(`SELECT OPEN COUNT(*) FROM P`)
	if err == nil || !strings.Contains(err.Error(), "marginals") {
		t.Errorf("expected marginals error, got %v", err)
	}
}

func TestValueRoundTripThroughResult(t *testing.T) {
	db := mosaic.Open(nil)
	if err := db.Exec(`CREATE TABLE t (a INT, b TEXT, c FLOAT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO t VALUES (1, 'x', 2.5), (2, 'y', -1.25)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT a, b, c FROM t ORDER BY a DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 2 || res.Rows[0][1].AsText() != "y" {
		t.Errorf("unexpected first row %v", res.Rows[0])
	}
	if res.Rows[1][2].Kind() != value.KindFloat || res.Rows[1][2].AsFloat() != 2.5 {
		t.Errorf("unexpected float cell %v", res.Rows[1][2])
	}
}

func TestPublicAPIExplain(t *testing.T) {
	db, _ := buildMigrantsDB(t, nil)
	results, err := db.Run(`EXPLAIN SELECT SEMI-OPEN COUNT(*) FROM EuropeMigrants`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0] == nil {
		t.Fatalf("explain results = %v", results)
	}
	var sawTechnique bool
	for _, row := range results[0].Rows {
		if row[0].AsText() == "technique" && strings.Contains(row[1].AsText(), "IPF") {
			sawTechnique = true
		}
	}
	if !sawTechnique {
		t.Errorf("explain output missing IPF technique: %v", results[0])
	}
}

func TestPublicAPIDistinct(t *testing.T) {
	db := mosaic.Open(nil)
	if err := db.Exec(`CREATE TABLE t (a TEXT); INSERT INTO t VALUES ('x'), ('x'), ('y')`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT DISTINCT a FROM t ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("DISTINCT rows = %v", res.Rows)
	}
}

func TestPublicAPIUnionSamples(t *testing.T) {
	db := mosaic.Open(&mosaic.Options{UnionSamples: true})
	err := db.Exec(`
		CREATE GLOBAL POPULATION P (g TEXT);
		CREATE SAMPLE A AS (SELECT * FROM P WHERE g = 'a');
		CREATE SAMPLE B AS (SELECT * FROM P WHERE g = 'b');
		CREATE TABLE T (g TEXT, n INT);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("A", [][]any{{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("B", [][]any{{"b"}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("T", [][]any{{"a", 1}, {"b", 3}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`CREATE METADATA P_M1 AS (SELECT g, n FROM T)`); err != nil {
		t.Fatal(err)
	}
	got, err := db.Scalar(`SELECT SEMI-OPEN COUNT(*) FROM P`)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 0.01 {
		t.Errorf("union COUNT = %g, want 4", got)
	}
}

func TestNewMarginalHelper(t *testing.T) {
	m, err := mosaic.NewMarginal("m", []string{"c", "e"}, [][]any{
		{"UK", "Yahoo", 10},
		{"UK", "AOL", 2.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != 12.5 || m.Len() != 2 {
		t.Errorf("marginal total=%g len=%d", m.Total(), m.Len())
	}
	if _, err := mosaic.NewMarginal("m", []string{"c"}, [][]any{{"UK"}}); err == nil {
		t.Error("cell without count should fail")
	}
	if _, err := mosaic.NewMarginal("m", []string{"c"}, [][]any{{"UK", "not-a-number"}}); err == nil {
		t.Error("non-numeric count should fail")
	}
}

func TestAddMarginalViaAPI(t *testing.T) {
	db := mosaic.Open(nil)
	if err := db.Exec(`
		CREATE GLOBAL POPULATION P (g TEXT);
		CREATE SAMPLE S AS (SELECT * FROM P);
	`); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("S", [][]any{{"a"}, {"b"}}); err != nil {
		t.Fatal(err)
	}
	m, err := mosaic.NewMarginal("P_g", []string{"g"}, [][]any{{"a", 6}, {"b", 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddMarginal("P", m); err != nil {
		t.Fatal(err)
	}
	got, err := db.Scalar(`SELECT SEMI-OPEN COUNT(*) FROM P`)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 0.01 {
		t.Errorf("COUNT via API marginal = %g", got)
	}
}

func TestTableAccessor(t *testing.T) {
	db := mosaic.Open(nil)
	if err := db.Exec(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("t")
	if err != nil || tbl.Len() != 1 {
		t.Errorf("Table accessor: %v, %v", tbl, err)
	}
	if _, err := db.Table("missing"); err == nil {
		t.Error("missing table should fail")
	}
}

func TestScalarErrors(t *testing.T) {
	db := mosaic.Open(nil)
	if err := db.Exec(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Scalar(`SELECT a FROM t`); err == nil {
		t.Error("multi-row scalar should fail")
	}
	if _, err := db.Scalar(`SELECT bad syntax`); err == nil {
		t.Error("parse error should propagate")
	}
}

func TestDeterminismAcrossDBs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains generators")
	}
	run := func() [][]mosaic.Value {
		db, _ := buildMigrantsDB(t, nil)
		res, err := db.Query(`SELECT OPEN email, COUNT(*) FROM EuropeMigrants GROUP BY email ORDER BY email`)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if value.Compare(a[i][j], b[i][j]) != 0 {
				t.Errorf("row %d col %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestPublicAPIDumpRestore(t *testing.T) {
	db, _ := buildMigrantsDB(t, nil)
	script, err := db.Dump()
	if err != nil {
		t.Fatal(err)
	}
	db2 := mosaic.Open(&mosaic.Options{Seed: 7})
	if err := db2.Exec(script); err != nil {
		t.Fatalf("restore: %v", err)
	}
	a, err := db.Scalar(`SELECT SEMI-OPEN COUNT(*) FROM EuropeMigrants`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db2.Scalar(`SELECT SEMI-OPEN COUNT(*) FROM EuropeMigrants`)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-6 {
		t.Errorf("restored SEMI-OPEN count %g vs %g", b, a)
	}
}

// TestPublicAPIWorkersDeterminism pins the package-level guarantee: equal
// seeds give identical OPEN answers for any Options.Workers value, and a DB
// serves concurrent queries safely (run with -race).
func TestPublicAPIWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a generator")
	}
	build := func(workers int) *mosaic.DB {
		db, _ := buildMigrantsDB(t, &mosaic.Options{
			Seed:        7,
			OpenSamples: 3,
			Workers:     workers,
			SWG: mosaic.SWGConfig{
				Hidden:      []int{32, 32},
				Latent:      4,
				Epochs:      6,
				Projections: 24,
				BatchSize:   200,
			},
		})
		return db
	}
	const q = `SELECT OPEN email, COUNT(*) FROM EuropeMigrants GROUP BY email ORDER BY email`
	render := func(res *mosaic.Result) string {
		var b strings.Builder
		for _, row := range res.Rows {
			for _, v := range row {
				b.WriteString(v.String())
				b.WriteByte('|')
			}
			b.WriteByte('\n')
		}
		return b.String()
	}
	ref := ""
	for _, workers := range []int{1, 4, 8} {
		db := build(workers)
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := render(res)
		if ref == "" {
			ref = got
		} else if got != ref {
			t.Errorf("workers=%d OPEN answer differs from workers=1:\n%s\nvs\n%s", workers, got, ref)
		}
	}

	// Concurrent clients on one DB must agree with each other.
	db := build(4)
	first, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := render(first)
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res, err := db.Query(q)
			if err != nil {
				errs[c] = err
				return
			}
			if got := render(res); got != want {
				errs[c] = fmt.Errorf("client %d answer diverged", c)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

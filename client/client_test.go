package client

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRemoteErrorDecoding(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write([]byte(`{"error": "core: unknown relation \"Nope\""}`))
	}))
	defer ts.Close()

	c := New(ts.URL + "/") // trailing slash must not double up
	_, err := c.Query("SELECT x FROM Nope")
	re, ok := err.(*RemoteError)
	if !ok {
		t.Fatalf("err = %T %v, want *RemoteError", err, err)
	}
	if re.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(re.Message, "unknown relation") {
		t.Errorf("RemoteError = %+v", re)
	}
	if !strings.Contains(re.Error(), "422") {
		t.Errorf("Error() = %q, want status code included", re.Error())
	}
}

func TestNonJSONErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text panic", http.StatusInternalServerError)
	}))
	defer ts.Close()
	err := New(ts.URL).Health()
	re, ok := err.(*RemoteError)
	if !ok || re.Message != "plain text panic" {
		t.Fatalf("err = %v, want RemoteError with raw body", err)
	}
}

func TestUnreachableServer(t *testing.T) {
	c := New("http://127.0.0.1:1") // nothing listens on port 1
	if err := c.Health(); err == nil {
		t.Fatal("health against dead server should fail")
	}
	if _, err := c.Run("SELECT 1"); err == nil {
		t.Fatal("run against dead server should fail")
	}
}

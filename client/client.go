// Package client is a thin Go client for a mosaic-serve instance. It mirrors
// the mosaic.DB query surface (Query, Run, Exec, Scalar) over HTTP, decoding
// answers into the same Result/Value types an in-process engine returns —
// byte-for-byte identical values, as internal/bench's HTTP load mode
// verifies.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"mosaic"
	"mosaic/internal/value"
	"mosaic/internal/wire"
)

// Client talks to one mosaic-serve base URL (e.g. "http://127.0.0.1:7171").
type Client struct {
	base     string
	http     *http.Client
	retry    *RetryPolicy // nil = no retries (see WithRetry)
	priority string       // "" = server-derived default (see WithPriority)
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom transport,
// timeout, tracing).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New creates a client for the given base URL. The client imposes no
// request timeout of its own — the server's -request-timeout bounds every
// request (504 on expiry), and a cold OPEN query can legitimately train for
// longer than any fixed client-side cap. Use the *Context methods or
// WithHTTPClient to impose a local deadline.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// RemoteError is a non-2xx answer from the server. RetryAfter carries the
// server's Retry-After hint on 503 shed/overload answers (0 when absent) —
// the retry policy honors it, and callers implementing their own backoff
// should too.
type RemoteError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("mosaic server: %d: %s", e.StatusCode, e.Message)
}

// do marshals body once and routes through the retry loop (a no-op unless
// WithRetry is configured and the path is idempotent).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var raw []byte
	if body != nil {
		var err error
		raw, err = json.Marshal(body)
		if err != nil {
			return err
		}
	}
	return c.doRetry(ctx, method, path, raw, out)
}

// doOnce performs exactly one HTTP round trip. A context deadline propagates
// to the server as X-Mosaic-Deadline-Ms (the remaining budget at send time),
// so the server's admission controller can shed doomed work before
// executing it.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.priority != "" {
		req.Header.Set("X-Mosaic-Priority", c.priority)
	}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 0 {
			ms = 0
		}
		req.Header.Set("X-Mosaic-Deadline-Ms", strconv.FormatInt(ms, 10))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		re := &RemoteError{StatusCode: resp.StatusCode}
		re.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		var werr wire.ErrorResponse
		if json.Unmarshal(raw, &werr) == nil && werr.Error != "" {
			re.Message = werr.Error
		} else {
			re.Message = strings.TrimSpace(string(raw))
		}
		return re
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("mosaic client: bad response body: %v", err)
	}
	return nil
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delta-seconds ("3") or an HTTP-date ("Wed, 21 Oct 2026 07:28:00 GMT",
// including the obsolete RFC 850 and asctime spellings http.ParseTime
// accepts). A date in the past, an unparseable value, or an absent header
// yield 0.
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// QueryContext runs a single SELECT on the server. Cancelling ctx (or
// letting its deadline expire) cancels the statement server-side too: the
// server threads the request context into the engine, so abandoned queries
// stop consuming server CPU.
func (c *Client) QueryContext(ctx context.Context, query string) (*mosaic.Result, error) {
	return c.QueryParamsContext(ctx, query)
}

// Query runs a single SELECT on the server.
func (c *Client) Query(query string) (*mosaic.Result, error) {
	return c.QueryContext(context.Background(), query)
}

// QueryParamsContext runs a parameterized SELECT: params bind the query's
// `?` placeholders in order. Values travel in the tagged wire encoding, so
// the answer is byte-identical to the same query with the literals inlined.
func (c *Client) QueryParamsContext(ctx context.Context, query string, params ...any) (*mosaic.Result, error) {
	cells, err := encodeParams(params)
	if err != nil {
		return nil, err
	}
	var w wire.Result
	if err := c.do(ctx, http.MethodPost, "/v1/query", wire.QueryRequest{Query: query, Params: cells}, &w); err != nil {
		return nil, err
	}
	return wire.DecodeResult(&w)
}

// QueryParams runs a parameterized SELECT (see QueryParamsContext).
func (c *Client) QueryParams(query string, params ...any) (*mosaic.Result, error) {
	return c.QueryParamsContext(context.Background(), query, params...)
}

// QueryRawContext runs an already-encoded wire query request and returns the
// raw wire result without decoding. The fleet coordinator's pass-through
// path uses it to relay a shard's answer byte-for-byte; ordinary callers
// want QueryContext.
func (c *Client) QueryRawContext(ctx context.Context, req *wire.QueryRequest) (*wire.Result, error) {
	var w wire.Result
	if err := c.do(ctx, http.MethodPost, "/v1/query", req, &w); err != nil {
		return nil, err
	}
	return &w, nil
}

// PartialContext requests one shard's partial aggregate states — the fleet
// coordinator's scatter primitive (POST /v1/partial). The path is
// idempotent, so WithRetry replays it like a query. Ordinary callers never
// need it.
func (c *Client) PartialContext(ctx context.Context, req *wire.PartialRequest) (*wire.PartialResponse, error) {
	var w wire.PartialResponse
	if err := c.do(ctx, http.MethodPost, "/v1/partial", req, &w); err != nil {
		return nil, err
	}
	return &w, nil
}

// encodeParams coerces Go-native parameters to wire cells.
func encodeParams(params []any) ([]wire.Cell, error) {
	if len(params) == 0 {
		return nil, nil
	}
	vals := make([]mosaic.Value, len(params))
	for i, p := range params {
		v, err := value.FromRaw(p)
		if err != nil {
			return nil, fmt.Errorf("mosaic client: parameter %d: %v", i+1, err)
		}
		vals[i] = v
	}
	return wire.EncodeValues(vals), nil
}

// Stmt is a prepared-statement-style handle: the query text is fixed at
// Prepare time and parameters bind per execution, mirroring
// mosaic.DB.Prepare's API shape over HTTP. The handle is connection-free;
// each execution travels as one parameterized /v1/query request (the wire
// protocol is stateless, so the parse/plan amortization lives in-process on
// the server side, not per handle).
type Stmt struct {
	c     *Client
	query string
}

// Prepare returns a prepared-statement-style handle for query.
func (c *Client) Prepare(query string) *Stmt {
	return &Stmt{c: c, query: query}
}

// Text returns the statement's SQL text.
func (s *Stmt) Text() string { return s.query }

// Query executes the statement with params bound to its placeholders.
func (s *Stmt) Query(params ...any) (*mosaic.Result, error) {
	return s.c.QueryParams(s.query, params...)
}

// QueryContext is Query with a cancellation context.
func (s *Stmt) QueryContext(ctx context.Context, params ...any) (*mosaic.Result, error) {
	return s.c.QueryParamsContext(ctx, s.query, params...)
}

// RunContext executes a semicolon-separated script and returns the result of
// every statement (nil for DDL/DML), mirroring mosaic.DB.Run.
func (c *Client) RunContext(ctx context.Context, script string) ([]*mosaic.Result, error) {
	out, _, err := c.RunGenerationContext(ctx, script)
	return out, err
}

// ExecRawContext executes a script and returns the raw wire response without
// decoding — the fleet coordinator's fan-out primitive, letting it relay one
// shard's answer byte-for-byte. Like every /v1/exec call it is never retried.
func (c *Client) ExecRawContext(ctx context.Context, script string) (*wire.ExecResponse, error) {
	var w wire.ExecResponse
	if err := c.do(ctx, http.MethodPost, "/v1/exec", wire.ExecRequest{Script: script}, &w); err != nil {
		return nil, err
	}
	return &w, nil
}

// RunGenerationContext is RunContext plus the server's DDL/DML generation
// counter after the script ran — the fleet coordinator's handshake for
// confirming that every shard landed on the same state after a fanned-out
// exec. Like /v1/exec itself it is never retried.
func (c *Client) RunGenerationContext(ctx context.Context, script string) ([]*mosaic.Result, uint64, error) {
	w, err := c.ExecRawContext(ctx, script)
	if err != nil {
		return nil, 0, err
	}
	out := make([]*mosaic.Result, len(w.Results))
	for i, res := range w.Results {
		dec, err := wire.DecodeResult(res)
		if err != nil {
			return nil, 0, err
		}
		out[i] = dec
	}
	return out, w.Generation, nil
}

// Run executes a semicolon-separated script, mirroring mosaic.DB.Run.
func (c *Client) Run(script string) ([]*mosaic.Result, error) {
	return c.RunContext(context.Background(), script)
}

// Exec executes DDL/DML statements, discarding any SELECT results.
func (c *Client) Exec(script string) error {
	_, err := c.Run(script)
	return err
}

// ExecContext is Exec with a cancellation context.
func (c *Client) ExecContext(ctx context.Context, script string) error {
	_, err := c.RunContext(ctx, script)
	return err
}

// Scalar runs a query expected to return a single 1×1 numeric answer.
// Optional params bind `?` placeholders.
func (c *Client) Scalar(query string, params ...any) (float64, error) {
	return c.ScalarContext(context.Background(), query, params...)
}

// ScalarContext is Scalar with a cancellation context.
func (c *Client) ScalarContext(ctx context.Context, query string, params ...any) (float64, error) {
	res, err := c.QueryParamsContext(ctx, query, params...)
	if err != nil {
		return 0, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return 0, fmt.Errorf("mosaic client: query returned %d rows × %d columns, want 1×1", len(res.Rows), len(res.Columns))
	}
	return res.Rows[0][0].Float64()
}

// ExplainContext asks the server how it would answer the query, bounded by
// ctx (so a dead server cannot hang the caller forever).
func (c *Client) ExplainContext(ctx context.Context, query string) (*mosaic.Result, error) {
	var w wire.Result
	path := "/v1/explain?q=" + url.QueryEscape(query)
	if err := c.do(ctx, http.MethodGet, path, nil, &w); err != nil {
		return nil, err
	}
	return wire.DecodeResult(&w)
}

// Explain asks the server how it would answer the query.
func (c *Client) Explain(query string) (*mosaic.Result, error) {
	return c.ExplainContext(context.Background(), query)
}

// HealthStatus is the decoded /healthz answer of a mosaic-serve or
// mosaic-coord process. Status is "ok" or "degraded"; the detail fields are
// populated according to what the target is: a follower reports its
// replication state, a coordinator reports per-shard and per-replica
// liveness.
type HealthStatus struct {
	Status     string
	UptimeSecs float64
	// Follower reports replication state when the target runs in follower
	// mode (mosaic-serve -follow).
	Follower *wire.FollowerStats
	// Shards and Replicas report per-backend liveness when the target is a
	// coordinator (replica keys are "shard/URL").
	Shards   map[string]bool
	Replicas map[string]bool
}

// Degraded reports whether the process answered but declared itself
// degraded — a stale follower, or a coordinator with a dead backend.
func (h *HealthStatus) Degraded() bool { return h.Status != "ok" }

// HealthContext fetches and decodes the server's /healthz, bounded by ctx.
// A non-nil status with Degraded() true means the process is alive but
// impaired; an error means it did not answer coherently at all.
func (c *Client) HealthContext(ctx context.Context) (*HealthStatus, error) {
	var raw struct {
		Status     string              `json:"status"`
		UptimeSecs float64             `json:"uptime_secs"`
		Follower   *wire.FollowerStats `json:"follower"`
		Shards     map[string]bool     `json:"shards"`
		Replicas   map[string]bool     `json:"replicas"`
	}
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &raw); err != nil {
		return nil, err
	}
	return &HealthStatus{
		Status:     raw.Status,
		UptimeSecs: raw.UptimeSecs,
		Follower:   raw.Follower,
		Shards:     raw.Shards,
		Replicas:   raw.Replicas,
	}, nil
}

// Health checks the server's liveness endpoint.
func (c *Client) Health() error {
	_, err := c.HealthContext(context.Background())
	return err
}

// SnapshotContext fetches the server's full dump script plus the generation
// it captures (GET /v1/snapshot) — the follower bootstrap primitive.
func (c *Client) SnapshotContext(ctx context.Context) (*wire.SnapshotResponse, error) {
	var w wire.SnapshotResponse
	if err := c.do(ctx, http.MethodGet, "/v1/snapshot", nil, &w); err != nil {
		return nil, err
	}
	return &w, nil
}

// SnapshotDeltaContext fetches the statement suffix advancing generation
// `from` to the primary's current generation (GET /v1/snapshot/delta). A
// *RemoteError with StatusCode 410 (Gone) means `from` fell out of the
// primary's bounded statement log and the follower must re-bootstrap from
// SnapshotContext.
func (c *Client) SnapshotDeltaContext(ctx context.Context, from uint64) (*wire.DeltaResponse, error) {
	var w wire.DeltaResponse
	if err := c.do(ctx, http.MethodGet, "/v1/snapshot/delta?from="+strconv.FormatUint(from, 10), nil, &w); err != nil {
		return nil, err
	}
	return &w, nil
}

// StatsContext fetches the server's /statsz counters, bounded by ctx.
func (c *Client) StatsContext(ctx context.Context) (*wire.StatsResponse, error) {
	var s wire.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/statsz", nil, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Stats fetches the server's /statsz counters.
func (c *Client) Stats() (*wire.StatsResponse, error) {
	return c.StatsContext(context.Background())
}

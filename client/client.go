// Package client is a thin Go client for a mosaic-serve instance. It mirrors
// the mosaic.DB query surface (Query, Run, Exec, Scalar) over HTTP, decoding
// answers into the same Result/Value types an in-process engine returns —
// byte-for-byte identical values, as internal/bench's HTTP load mode
// verifies.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"mosaic"
	"mosaic/internal/wire"
)

// Client talks to one mosaic-serve base URL (e.g. "http://127.0.0.1:7171").
type Client struct {
	base string
	http *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom transport,
// timeout, tracing).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New creates a client for the given base URL. The client imposes no
// request timeout of its own — the server's -request-timeout bounds every
// request (504 on expiry), and a cold OPEN query can legitimately train for
// longer than any fixed client-side cap. Use the *Context methods or
// WithHTTPClient to impose a local deadline.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// RemoteError is a non-2xx answer from the server.
type RemoteError struct {
	StatusCode int
	Message    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("mosaic server: %d: %s", e.StatusCode, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var werr wire.ErrorResponse
		if json.Unmarshal(raw, &werr) == nil && werr.Error != "" {
			return &RemoteError{StatusCode: resp.StatusCode, Message: werr.Error}
		}
		return &RemoteError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("mosaic client: bad response body: %v", err)
	}
	return nil
}

// QueryContext runs a single SELECT on the server.
func (c *Client) QueryContext(ctx context.Context, query string) (*mosaic.Result, error) {
	var w wire.Result
	if err := c.do(ctx, http.MethodPost, "/v1/query", wire.QueryRequest{Query: query}, &w); err != nil {
		return nil, err
	}
	return wire.DecodeResult(&w)
}

// Query runs a single SELECT on the server.
func (c *Client) Query(query string) (*mosaic.Result, error) {
	return c.QueryContext(context.Background(), query)
}

// RunContext executes a semicolon-separated script and returns the result of
// every statement (nil for DDL/DML), mirroring mosaic.DB.Run.
func (c *Client) RunContext(ctx context.Context, script string) ([]*mosaic.Result, error) {
	var w wire.ExecResponse
	if err := c.do(ctx, http.MethodPost, "/v1/exec", wire.ExecRequest{Script: script}, &w); err != nil {
		return nil, err
	}
	out := make([]*mosaic.Result, len(w.Results))
	for i, res := range w.Results {
		dec, err := wire.DecodeResult(res)
		if err != nil {
			return nil, err
		}
		out[i] = dec
	}
	return out, nil
}

// Run executes a semicolon-separated script, mirroring mosaic.DB.Run.
func (c *Client) Run(script string) ([]*mosaic.Result, error) {
	return c.RunContext(context.Background(), script)
}

// Exec executes DDL/DML statements, discarding any SELECT results.
func (c *Client) Exec(script string) error {
	_, err := c.Run(script)
	return err
}

// Scalar runs a query expected to return a single 1×1 numeric answer.
func (c *Client) Scalar(query string) (float64, error) {
	res, err := c.Query(query)
	if err != nil {
		return 0, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return 0, fmt.Errorf("mosaic client: query returned %d rows × %d columns, want 1×1", len(res.Rows), len(res.Columns))
	}
	return res.Rows[0][0].Float64()
}

// Explain asks the server how it would answer the query.
func (c *Client) Explain(query string) (*mosaic.Result, error) {
	var w wire.Result
	path := "/v1/explain?q=" + url.QueryEscape(query)
	if err := c.do(context.Background(), http.MethodGet, path, nil, &w); err != nil {
		return nil, err
	}
	return wire.DecodeResult(&w)
}

// Health checks the server's liveness endpoint.
func (c *Client) Health() error {
	return c.do(context.Background(), http.MethodGet, "/healthz", nil, nil)
}

// Stats fetches the server's /statsz counters.
func (c *Client) Stats() (*wire.StatsResponse, error) {
	var s wire.StatsResponse
	if err := c.do(context.Background(), http.MethodGet, "/statsz", nil, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

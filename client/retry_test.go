package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mosaic/internal/faulty"
)

// shedThenServe answers 503 + Retry-After for the first n requests to path,
// then delegates to ok.
func shedThenServe(n *atomic.Int64, retryAfter string, ok http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if n.Add(-1) >= 0 {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"overloaded"}`))
			return
		}
		ok(w, r)
	}
}

func TestRetryOn503HonorsRetryAfter(t *testing.T) {
	var shedsLeft atomic.Int64
	shedsLeft.Store(2)
	var served atomic.Int64
	ts := httptest.NewServer(shedThenServe(&shedsLeft, "1", func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(RetryPolicy{MaxRetries: 3, BaseBackoff: time.Millisecond, Jitter: -1}))
	start := time.Now()
	if err := c.Health(); err != nil {
		t.Fatalf("health after sheds: %v", err)
	}
	if served.Load() != 1 {
		t.Errorf("server served %d, want 1", served.Load())
	}
	// Two sheds, each with Retry-After: 1 → at least ~2s of waiting: the
	// server's hint overrode the millisecond backoff.
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Errorf("retries took %s, want ≥ 2s (Retry-After ignored?)", elapsed)
	}
}

func TestRetryOnTransportError(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	// Fail the first two attempts at the transport layer (connection reset
	// before any byte); the third forwards.
	httpc := &http.Client{Transport: failNTimes(2)}
	c := New(ts.URL, WithHTTPClient(httpc), WithRetry(RetryPolicy{MaxRetries: 4, BaseBackoff: time.Millisecond, Jitter: -1}))
	if err := c.Health(); err != nil {
		t.Fatalf("health through resets: %v", err)
	}
	if served.Load() != 1 {
		t.Errorf("server served %d, want 1", served.Load())
	}
}

// failNTimes is a transport failing its first n round trips, then delegating
// to the default transport.
func failNTimes(n int64) http.RoundTripper {
	var left atomic.Int64
	left.Store(n)
	return roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if left.Add(-1) >= 0 {
			return nil, faulty.ErrInjectedReset
		}
		return http.DefaultTransport.RoundTrip(req)
	})
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestNeverRetriesExec(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(RetryPolicy{MaxRetries: 5, BaseBackoff: time.Millisecond, Jitter: -1}))
	if err := c.Exec("CREATE TABLE T (a INT)"); err == nil {
		t.Fatal("exec against a shedding server should fail")
	}
	if hits.Load() != 1 {
		t.Errorf("/v1/exec was attempted %d times, want exactly 1 (scripts are not idempotent)", hits.Load())
	}
}

func TestNoRetryOnClientErrorsOr504(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusUnprocessableEntity, http.StatusGatewayTimeout} {
		var hits atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			w.WriteHeader(status)
			w.Write([]byte(`{"error":"nope"}`))
		}))
		c := New(ts.URL, WithRetry(RetryPolicy{MaxRetries: 5, BaseBackoff: time.Millisecond, Jitter: -1}))
		var re *RemoteError
		if err := c.Health(); !errors.As(err, &re) || re.StatusCode != status {
			t.Errorf("status %d: err = %v, want RemoteError", status, err)
		}
		if hits.Load() != 1 {
			t.Errorf("status %d retried (%d attempts), want 1", status, hits.Load())
		}
		ts.Close()
	}
}

func TestRetryBudgetCapsAttempts(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	// Budget 1s < the 2s Retry-After hint: exactly one attempt, no wait.
	c := New(ts.URL, WithRetry(RetryPolicy{MaxRetries: 10, Budget: time.Second, Jitter: -1}))
	start := time.Now()
	err := c.Health()
	var re *RemoteError
	if !errors.As(err, &re) || re.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 RemoteError", err)
	}
	if re.RetryAfter != 2*time.Second {
		t.Errorf("RetryAfter = %s, want 2s", re.RetryAfter)
	}
	if hits.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (budget below the hinted wait)", hits.Load())
	}
	if time.Since(start) > time.Second {
		t.Errorf("budget-capped call still waited %s", time.Since(start))
	}
}

func TestNoRetryAfterContextCancel(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(RetryPolicy{MaxRetries: 5, BaseBackoff: 10 * time.Second, Jitter: -1}))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := c.HealthContext(ctx); err == nil {
		t.Fatal("cancelled health should fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled retry loop ran %s", elapsed)
	}
	if hits.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (no retry past cancellation)", hits.Load())
	}
}

func TestDeadlineHeaderPropagates(t *testing.T) {
	got := make(chan string, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got <- r.Header.Get("X-Mosaic-Deadline-Ms")
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithPriority("interactive"))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.HealthContext(ctx); err != nil {
		t.Fatal(err)
	}
	hdr := <-got
	if hdr == "" {
		t.Fatal("no X-Mosaic-Deadline-Ms header with a context deadline set")
	}
}

func TestPriorityHeaderPropagates(t *testing.T) {
	got := make(chan string, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got <- r.Header.Get("X-Mosaic-Priority")
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	if err := New(ts.URL, WithPriority("batch")).Health(); err != nil {
		t.Fatal(err)
	}
	if hdr := <-got; hdr != "batch" {
		t.Errorf("priority header = %q, want batch", hdr)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Jitter: -1}.withDefaults()
	if w := p.backoff(0, 0); w != 100*time.Millisecond {
		t.Errorf("attempt 0 wait = %s", w)
	}
	if w := p.backoff(2, 0); w != 400*time.Millisecond {
		t.Errorf("attempt 2 wait = %s", w)
	}
	if w := p.backoff(10, 0); w != time.Second {
		t.Errorf("attempt 10 wait = %s, want the 1s cap", w)
	}
	if w := p.backoff(0, 500*time.Millisecond); w != 500*time.Millisecond {
		t.Errorf("hinted wait = %s, want the server's 500ms", w)
	}
}

// TestRetryAfterHintClampedToMaxBackoff pins the fix for the Retry-After
// bypass: a hint beyond MaxBackoff used to be honored verbatim, letting one
// skewed or hostile header burn the entire retry Budget in a single wait.
func TestRetryAfterHintClampedToMaxBackoff(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Jitter: -1}.withDefaults()
	if w := p.backoff(0, time.Hour); w != time.Second {
		t.Errorf("hour-long hint waited %s, want the 1s MaxBackoff clamp", w)
	}
	if w := p.backoff(3, 30*time.Second); w != time.Second {
		t.Errorf("30s hint waited %s, want the 1s MaxBackoff clamp", w)
	}
}

// TestRetryAfterHintJittered pins the other half of the fix: a hinted wait
// must be jittered into [w·(1-Jitter), w] like any other wait, or
// synchronized clients all honoring the same whole-second hint herd back on
// the same instant.
func TestRetryAfterHintJittered(t *testing.T) {
	p := RetryPolicy{MaxBackoff: 10 * time.Second, Jitter: 0.5}.withDefaults()
	hint := 4 * time.Second
	lo, hi := 2*time.Second, 4*time.Second
	sawBelowHint := false
	for i := 0; i < 200; i++ {
		w := p.backoff(0, hint)
		if w < lo || w > hi {
			t.Fatalf("jittered hint wait %s outside [%s, %s]", w, lo, hi)
		}
		if w < hint-100*time.Millisecond {
			sawBelowHint = true
		}
	}
	if !sawBelowHint {
		t.Error("200 jittered waits never landed below the hint — jitter not applied to Retry-After")
	}
	// A hint over the cap jitters off the clamped value, not the raw hint.
	pc := RetryPolicy{MaxBackoff: time.Second, Jitter: 0.5}.withDefaults()
	for i := 0; i < 50; i++ {
		if w := pc.backoff(0, time.Hour); w > time.Second {
			t.Fatalf("clamped+jittered wait %s exceeds the 1s cap", w)
		}
	}
}

// TestParseRetryAfterForms pins the Retry-After parse fix: RFC 9110 allows
// both delta-seconds and an HTTP-date, and the date form used to silently
// parse as 0 (no hint), so date-speaking servers lost their backoff signal.
func TestParseRetryAfterForms(t *testing.T) {
	now := time.Date(2026, time.August, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{"0", 0},
		{"-5", 0},
		{"garbage", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // past date: no wait
		{now.Add(2 * time.Second).Format(time.RFC850), 2 * time.Second},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.header, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %s, want %s", tc.header, got, tc.want)
		}
	}
}

// TestRetryHonorsHTTPDateRetryAfter drives the date form end to end: a 503
// carrying an HTTP-date Retry-After must surface a positive RetryAfter on
// the RemoteError, exactly like the delta-seconds form.
func TestRetryHonorsHTTPDateRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer ts.Close()
	err := New(ts.URL).Health()
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.RetryAfter < 25*time.Second || re.RetryAfter > 30*time.Second {
		t.Errorf("RetryAfter = %s from an HTTP-date header, want ≈30s", re.RetryAfter)
	}
}

package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// RetryPolicy configures automatic retries of idempotent requests. The
// client retries only read paths — /v1/query, /v1/explain, /healthz,
// /statsz; NEVER /v1/exec, whose scripts mutate state and are not safe to
// replay — and only on outcomes that signal a transient condition: a 503
// (overloaded or shedding server; the Retry-After hint is honored) or a
// connection-level transport error (refused, reset, dropped mid-response).
// Engine errors, 4xx answers, and 504s are never retried: the server already
// spent the request's deadline.
//
// Waits follow exponential backoff with jitter: attempt n waits
// min(BaseBackoff·2ⁿ, MaxBackoff), randomized into [w·(1-Jitter), w]. A
// server Retry-After hint replaces the exponential schedule for that
// attempt, but is still clamped to MaxBackoff and jittered — the hint steers
// the wait, it never overrides the policy's caps. Budget caps the total time
// spent across all attempts and waits.
type RetryPolicy struct {
	// MaxRetries is the number of retry attempts after the first try.
	// Default 3.
	MaxRetries int
	// BaseBackoff is the first retry's nominal wait. Default 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 5s.
	MaxBackoff time.Duration
	// Budget caps the total elapsed time across attempts and waits: when a
	// wait would exceed it, the last error returns instead. Default 30s.
	Budget time.Duration
	// Jitter is the randomized fraction of each wait, in [0, 1]: the actual
	// wait is uniform in [w·(1-Jitter), w]. Default 0.5; negative disables
	// jitter entirely (deterministic waits, for tests).
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Budget <= 0 {
		p.Budget = 30 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// WithRetry enables automatic retries of idempotent requests under p.
// Zero-valued fields take their documented defaults.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) {
		pol := p.withDefaults()
		c.retry = &pol
	}
}

// WithPriority sets the X-Mosaic-Priority class ("interactive" or "batch")
// sent with every request, overriding the server's visibility-derived
// default.
func WithPriority(class string) Option {
	return func(c *Client) { c.priority = class }
}

// jitterMu guards the shared jitter source (math/rand's global source is
// also fine, but a dedicated one keeps the client self-contained).
var (
	jitterMu  sync.Mutex
	jitterRNG = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func jitterFloat() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRNG.Float64()
}

// idempotentPath reports whether path is safe to replay. /v1/exec mutates
// state and is excluded by design.
func idempotentPath(path string) bool {
	switch path {
	case "/v1/query", "/v1/partial", "/v1/snapshot", "/healthz", "/statsz":
		return true
	}
	if len(path) >= len("/v1/snapshot/delta") && path[:len("/v1/snapshot/delta")] == "/v1/snapshot/delta" {
		return true
	}
	return len(path) >= len("/v1/explain") && path[:len("/v1/explain")] == "/v1/explain"
}

// retryable classifies err: a 503 RemoteError (with its Retry-After hint)
// or a connection-level transport error. Context cancellation is never
// retryable — the caller's deadline is spent.
func retryable(err error) (wait time.Duration, ok bool) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 0, false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		if re.StatusCode == http.StatusServiceUnavailable {
			return re.RetryAfter, true
		}
		return 0, false
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		// Connection refused/reset, dropped mid-body, proxy failures — the
		// request may never have reached the engine; idempotent paths are
		// safe to replay.
		return 0, true
	}
	return 0, false
}

// backoff computes attempt n's wait (n counts from 0), honoring a server
// Retry-After hint when present. The hint replaces the exponential schedule
// but never escapes the policy: it is clamped to MaxBackoff (a skewed or
// hostile hint must not burn the whole Budget in one wait) and jittered like
// any other wait (synchronized clients all honoring the same whole-second
// hint would otherwise herd back on the same instant).
func (p RetryPolicy) backoff(n int, retryAfter time.Duration) time.Duration {
	w := retryAfter
	if w <= 0 {
		w = p.BaseBackoff << uint(n)
	}
	if w <= 0 || w > p.MaxBackoff {
		w = p.MaxBackoff
	}
	if p.Jitter > 0 {
		f := 1 - p.Jitter*jitterFloat()
		w = time.Duration(float64(w) * f)
	}
	return w
}

// doRetry wraps one doOnce call in the retry loop. Non-idempotent paths pass
// straight through.
func (c *Client) doRetry(ctx context.Context, method, path string, body []byte, out any) error {
	if c.retry == nil || !idempotentPath(path) {
		return c.doOnce(ctx, method, path, body, out)
	}
	p := *c.retry
	start := time.Now()
	var err error
	for attempt := 0; ; attempt++ {
		err = c.doOnce(ctx, method, path, body, out)
		if err == nil || attempt >= p.MaxRetries {
			return err
		}
		hint, ok := retryable(err)
		if !ok {
			return err
		}
		wait := p.backoff(attempt, hint)
		if time.Since(start)+wait > p.Budget {
			return err
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return err
		}
	}
}
